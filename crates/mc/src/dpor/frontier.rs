//! Work-stealing frontier for parallel DPOR.
//!
//! The serial explorer walks one DFS; the parallel one shares a dynamic
//! **frontier** of donated subtrees. Each [`WorkItem`] names a choice
//! point (decision `prefix` from the root) plus the sleep set and first
//! branch index under which its remaining branches must be explored —
//! exactly the state the serial DFS would carry there, so the union of
//! all items' explorations equals the serial exploration regardless of
//! worker count or interleaving.
//!
//! Exploration is seeded by a single root item; workers that find the
//! queue starved donate their shallowest splittable node
//! ([`DporCursor::split_shallowest`]), so the frontier balances itself
//! against however lopsided the schedule tree turns out to be. Popping
//! an item another worker pushed counts as a *steal*
//! ([`EventKind::FrontierSteal`]). Termination is idle-counting: when
//! every worker is waiting on an empty queue, the tree is exhausted.
//!
//! Verdict determinism does not come from the frontier (item order is
//! racy by design) but from the caller keeping the lexicographically
//! least violating decision path and pruning work beyond it — see
//! [`explore_dpor_par`](super::explore_dpor_par).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use jungle_obs::trace::{self as flight, EventKind};

use super::cursor::SleepEntry;

/// A donated subtree: explore the choice point at `prefix`, branches
/// `next..`, under `sleep`.
#[derive(Clone, Debug)]
pub struct WorkItem {
    /// Decision indices from the root down to (not including) the
    /// donated choice point.
    pub prefix: Vec<usize>,
    /// Sleep set in force at that point, with the donor's explored and
    /// in-progress branches pre-slept.
    pub sleep: Vec<SleepEntry>,
    /// First branch index the receiver may explore.
    pub next: usize,
}

/// Worker id used for the seed item (matches no real worker, so the
/// first pop always counts as a steal in multi-worker runs).
pub const SEED_WORKER: usize = usize::MAX;

struct State {
    items: VecDeque<(usize, WorkItem)>,
    idle: usize,
    done: bool,
    steals: u64,
}

/// Shared work queue with idle-counting termination.
pub struct Frontier {
    state: Mutex<State>,
    cv: Condvar,
    workers: usize,
}

impl Frontier {
    /// A frontier drained by `workers` workers.
    pub fn new(workers: usize) -> Self {
        Frontier {
            state: Mutex::new(State {
                items: VecDeque::new(),
                idle: 0,
                done: false,
                steals: 0,
            }),
            cv: Condvar::new(),
            workers,
        }
    }

    /// Publish a donated subtree. `from` is the donating worker.
    pub fn push(&self, from: usize, item: WorkItem) {
        flight::emit(
            EventKind::RevisitEnqueued,
            item.prefix.len() as u64,
            item.next as u64,
        );
        let mut s = self.state.lock().unwrap();
        s.items.push_back((from, item));
        drop(s);
        self.cv.notify_one();
    }

    /// Take the next item for worker `me`, blocking while the queue is
    /// empty but other workers are still active. Returns `None` once
    /// every worker is idle (global exploration finished).
    pub fn pop(&self, me: usize) -> Option<WorkItem> {
        self.pop_stealing(me).map(|(item, _)| item)
    }

    /// Like [`pop`](Self::pop), but also reports whether the item was a
    /// steal (pushed by a different worker) so callers can attribute
    /// the wait time they spent acquiring it.
    pub fn pop_stealing(&self, me: usize) -> Option<(WorkItem, bool)> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some((from, item)) = s.items.pop_front() {
                let stolen = from != me;
                if stolen {
                    s.steals += 1;
                    flight::emit(
                        EventKind::FrontierSteal,
                        item.prefix.len() as u64,
                        from as u64,
                    );
                }
                return Some((item, stolen));
            }
            if s.done {
                return None;
            }
            s.idle += 1;
            if s.idle == self.workers {
                s.done = true;
                s.idle -= 1;
                self.cv.notify_all();
                return None;
            }
            s = self.cv.wait(s).unwrap();
            s.idle -= 1;
        }
    }

    /// Should a worker donate work? True while the queue is starved
    /// (empty, or workers are already waiting on it).
    pub fn hungry(&self) -> bool {
        let s = self.state.lock().unwrap();
        !s.done && (s.items.is_empty() || s.idle > 0)
    }

    /// Items popped by a worker other than their pusher.
    pub fn steals(&self) -> u64 {
        self.state.lock().unwrap().steals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn item(prefix: Vec<usize>) -> WorkItem {
        WorkItem {
            prefix,
            sleep: Vec::new(),
            next: 0,
        }
    }

    #[test]
    fn single_worker_drains_and_terminates() {
        let f = Frontier::new(1);
        f.push(SEED_WORKER, item(vec![]));
        assert!(f.pop(0).is_some());
        assert_eq!(f.steals(), 1, "seed pop is a steal");
        assert!(f.pop(0).is_none(), "idle count reaches worker count");
        assert!(f.pop(0).is_none(), "done latches");
        assert!(!f.hungry(), "finished frontier wants nothing");
    }

    #[test]
    fn own_items_are_not_steals() {
        let f = Frontier::new(1);
        f.push(3, item(vec![1]));
        assert!(f.pop(3).is_some());
        assert_eq!(f.steals(), 0);
    }

    #[test]
    fn blocked_worker_wakes_on_push() {
        let f = Frontier::new(2);
        thread::scope(|scope| {
            let waiter = scope.spawn(|| f.pop(0));
            // Worker 1 produces one item, then drains to termination.
            f.push(1, item(vec![2]));
            let got = waiter.join().unwrap();
            assert_eq!(got.expect("woken with the item").prefix, vec![2]);
            assert_eq!(f.steals(), 1);
            // Both workers now idle out.
            let a = scope.spawn(|| f.pop(0));
            assert!(f.pop(1).is_none());
            assert!(a.join().unwrap().is_none());
        });
    }

    #[test]
    fn hungry_when_empty_or_idle() {
        let f = Frontier::new(2);
        assert!(f.hungry(), "empty queue is hungry");
        f.push(0, item(vec![]));
        assert!(!f.hungry(), "stocked queue with no idlers is fed");
    }
}
