//! The shared TM interpreter: a reactive state machine executing one
//! thread program under an [`AlgoSpec`](super::AlgoSpec).

use super::{AlgoSpec, CommitUpdate, NtWriteImpl};
use crate::layout::{addr_of, lock_owner, packed, GLOBAL_LOCK, LOCK_FREE};
use crate::program::{Stmt, ThreadProg, TxOp};
use jungle_core::ids::{ProcId, Val, Var};
use jungle_core::op::{Command, Op};
use jungle_memsim::process::{PInstr, Process, Resume, Step};

fn rd_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Read { var, val })
}

fn wr_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Write { var, val })
}

/// Interpreter phases. Phases that issued an instruction are resumed
/// with its result in `last`.
#[derive(Clone, Copy, Debug)]
enum Ph {
    NextStmt,
    // Transaction start (lock acquisition).
    TxnStartInv,
    TxnAcqCas,
    TxnAcqCheck,
    TxnAcqRetry,
    // Guarded transactions: transactional read of the guard.
    GuardInv(Var, Val),
    GuardCheck(Var, Val),
    GuardLoaded(Var, Val),
    // Transactional operations.
    TxnOpNext,
    TxnReadCheck(Var),
    TxnReadLoaded(Var),
    TxnWriteEnsure(Var, Val),
    TxnWriteLoaded(Var, Val),
    TxnWriteRecord(Var, Val),
    // Transaction end.
    TxnEndInv,
    CommitUpdate(usize),
    CommitIssued(usize),
    EndRelease,
    TxnEndResp,
    // Non-transactional read.
    NtReadInv(Var),
    NtReadLoad(Var),
    NtReadResp(Var),
    // Non-transactional write.
    NtWriteInv(Var, Val),
    NtWriteBody(Var, Val),
    NtWAcqCheck(Var, Val),
    NtWAcqRetry(Var, Val),
    NtWStore(Var, Val),
    NtWRelease(Var, Val),
    NtWriteResp(Var, Val),
    Finished,
}

/// One thread of a program, compiled against an algorithm spec.
pub struct TmProcess {
    spec: AlgoSpec,
    pid: ProcId,
    stmts: Vec<Stmt>,
    stmt_idx: usize,
    op_idx: usize,
    phase: Ph,
    /// Words observed at first access per variable (full packed words
    /// for the versioned TM).
    readset: Vec<(Var, Val)>,
    /// Pending transactional writes (program values).
    writeset: Vec<(Var, Val)>,
    /// Process-local version counter (versioned TM).
    version: u32,
    /// Set when a guarded transaction's guard did not match: the body
    /// is skipped and the transaction commits empty.
    skip_body: bool,
}

impl TmProcess {
    /// Compile `prog` for process `pid` under `spec`.
    pub fn new(spec: AlgoSpec, pid: ProcId, prog: ThreadProg) -> Self {
        TmProcess {
            spec,
            pid,
            stmts: prog.0,
            stmt_idx: 0,
            op_idx: 0,
            phase: Ph::NextStmt,
            readset: Vec::new(),
            writeset: Vec::new(),
            version: 0,
            skip_body: false,
        }
    }

    fn decode(&self, word: Val) -> Val {
        if self.spec.packed {
            packed::value(word)
        } else {
            word
        }
    }

    fn encode_fresh(&mut self, val: Val) -> Val {
        if self.spec.packed {
            self.version += 1;
            packed::pack(val, self.pid, self.version)
        } else {
            val
        }
    }

    fn readset_get(&self, v: Var) -> Option<Val> {
        self.readset.iter().find(|(x, _)| *x == v).map(|(_, w)| *w)
    }

    fn writeset_get(&self, v: Var) -> Option<Val> {
        self.writeset.iter().find(|(x, _)| *x == v).map(|(_, w)| *w)
    }

    fn cur_txn(&self) -> (&[TxOp], bool) {
        match &self.stmts[self.stmt_idx] {
            Stmt::Txn { ops, abort } => (ops, *abort),
            Stmt::TxnGuard { ops, .. } => (ops, false),
            _ => unreachable!("cur_txn outside a transaction statement"),
        }
    }

    /// The guard of the current statement, if it is a guarded
    /// transaction.
    fn cur_guard(&self) -> Option<(Var, Val)> {
        match &self.stmts[self.stmt_idx] {
            Stmt::TxnGuard { guard, expect, .. } => Some((*guard, *expect)),
            _ => None,
        }
    }
}

impl Process for TmProcess {
    fn next(&mut self, last: Resume) -> Step {
        let mut last = last;
        loop {
            match self.phase {
                Ph::Finished => return Step::Done,
                Ph::NextStmt => {
                    self.op_idx = 0;
                    self.readset.clear();
                    self.writeset.clear();
                    self.skip_body = false;
                    if self.stmt_idx >= self.stmts.len() {
                        self.phase = Ph::Finished;
                        continue;
                    }
                    match self.stmts[self.stmt_idx].clone() {
                        Stmt::Txn { .. } | Stmt::TxnGuard { .. } => self.phase = Ph::TxnStartInv,
                        Stmt::NtRead(v) => self.phase = Ph::NtReadInv(v),
                        Stmt::NtWrite(v, val) => self.phase = Ph::NtWriteInv(v, val),
                    }
                }

                // ---- transaction start -------------------------------
                Ph::TxnStartInv => {
                    self.phase = Ph::TxnAcqCas;
                    return Step::Inv(Op::Start);
                }
                Ph::TxnAcqCas => {
                    self.phase = Ph::TxnAcqCheck;
                    return Step::Instr(PInstr::Cas(GLOBAL_LOCK, LOCK_FREE, lock_owner(self.pid)));
                }
                Ph::TxnAcqCheck => {
                    if last == Some(1) {
                        self.phase = match self.cur_guard() {
                            Some((g, e)) => Ph::GuardInv(g, e),
                            None => Ph::TxnOpNext,
                        };
                        return Step::Resp(Op::Start);
                    }
                    self.phase = Ph::TxnAcqRetry;
                    return Step::Instr(PInstr::Load(GLOBAL_LOCK));
                }
                Ph::TxnAcqRetry => {
                    if last == Some(LOCK_FREE) {
                        self.phase = Ph::TxnAcqCas;
                    } else {
                        self.phase = Ph::TxnAcqRetry;
                        return Step::Instr(PInstr::Load(GLOBAL_LOCK));
                    }
                }

                // ---- guarded transactions ----------------------------
                Ph::GuardInv(g, e) => {
                    self.phase = Ph::GuardCheck(g, e);
                    return Step::Inv(rd_op(g, 0));
                }
                Ph::GuardCheck(g, e) => {
                    if let Some(val) = self
                        .writeset_get(g)
                        .or_else(|| self.readset_get(g).map(|w| self.decode(w)))
                    {
                        self.skip_body = val != e;
                        self.phase = Ph::TxnOpNext;
                        return Step::Resp(rd_op(g, val));
                    }
                    self.phase = Ph::GuardLoaded(g, e);
                    return Step::Instr(PInstr::Load(addr_of(g)));
                }
                Ph::GuardLoaded(g, e) => {
                    let word = last.expect("load result");
                    self.readset.push((g, word));
                    let val = self.decode(word);
                    self.skip_body = val != e;
                    self.phase = Ph::TxnOpNext;
                    return Step::Resp(rd_op(g, val));
                }

                // ---- transactional operations ------------------------
                Ph::TxnOpNext => {
                    let (ops, _) = self.cur_txn();
                    if self.skip_body || self.op_idx >= ops.len() {
                        self.phase = Ph::TxnEndInv;
                        continue;
                    }
                    match ops[self.op_idx] {
                        TxOp::Read(v) => {
                            self.phase = Ph::TxnReadCheck(v);
                            return Step::Inv(rd_op(v, 0));
                        }
                        TxOp::Write(v, val) => {
                            self.phase = Ph::TxnWriteEnsure(v, val);
                            return Step::Inv(wr_op(v, val));
                        }
                    }
                }
                Ph::TxnReadCheck(v) => {
                    // Read-own-writes, then readset, then memory.
                    if let Some(val) = self.writeset_get(v) {
                        self.op_idx += 1;
                        self.phase = Ph::TxnOpNext;
                        return Step::Resp(rd_op(v, val));
                    }
                    if let Some(word) = self.readset_get(v) {
                        let val = self.decode(word);
                        self.op_idx += 1;
                        self.phase = Ph::TxnOpNext;
                        return Step::Resp(rd_op(v, val));
                    }
                    self.phase = Ph::TxnReadLoaded(v);
                    return Step::Instr(PInstr::Load(addr_of(v)));
                }
                Ph::TxnReadLoaded(v) => {
                    let word = last.expect("load result");
                    self.readset.push((v, word));
                    let val = self.decode(word);
                    self.op_idx += 1;
                    self.phase = Ph::TxnOpNext;
                    return Step::Resp(rd_op(v, val));
                }
                Ph::TxnWriteEnsure(v, val) => {
                    // Figure 6: a transactional write first issues a
                    // transactional read (to latch the expected word for
                    // the commit-time CAS).
                    if self.readset_get(v).is_some() || self.writeset_get(v).is_some() {
                        self.phase = Ph::TxnWriteRecord(v, val);
                        continue;
                    }
                    self.phase = Ph::TxnWriteLoaded(v, val);
                    return Step::Instr(PInstr::Load(addr_of(v)));
                }
                Ph::TxnWriteLoaded(v, val) => {
                    let word = last.expect("load result");
                    self.readset.push((v, word));
                    self.phase = Ph::TxnWriteRecord(v, val);
                }
                Ph::TxnWriteRecord(v, val) => {
                    match self.writeset.iter_mut().find(|(x, _)| *x == v) {
                        Some(entry) => entry.1 = val,
                        None => self.writeset.push((v, val)),
                    }
                    self.op_idx += 1;
                    self.phase = Ph::TxnOpNext;
                    return Step::Resp(wr_op(v, val));
                }

                // ---- transaction end ---------------------------------
                Ph::TxnEndInv => {
                    let (_, abort) = self.cur_txn();
                    if abort {
                        self.phase = Ph::EndRelease;
                        return Step::Inv(Op::Abort);
                    }
                    self.phase = Ph::CommitUpdate(0);
                    return Step::Inv(Op::Commit);
                }
                Ph::CommitUpdate(wix) => {
                    if wix >= self.writeset.len() || self.spec.commit == CommitUpdate::Skip {
                        self.phase = Ph::EndRelease;
                        continue;
                    }
                    let (v, val) = self.writeset[wix];
                    let new_word = self.encode_fresh(val);
                    self.phase = Ph::CommitIssued(wix);
                    match self.spec.commit {
                        CommitUpdate::Cas => {
                            let expected = self
                                .readset_get(v)
                                .expect("write implies an earlier transactional read");
                            return Step::Instr(PInstr::Cas(addr_of(v), expected, new_word));
                        }
                        CommitUpdate::Store => {
                            return Step::Instr(PInstr::Store(addr_of(v), new_word));
                        }
                        CommitUpdate::Skip => unreachable!(),
                    }
                }
                Ph::CommitIssued(wix) => {
                    // Figure 6 ignores the CAS result: a failure means a
                    // non-transactional write intervened and is ordered
                    // after the transaction.
                    self.phase = Ph::CommitUpdate(wix + 1);
                }
                Ph::EndRelease => {
                    self.phase = Ph::TxnEndResp;
                    return Step::Instr(PInstr::Store(GLOBAL_LOCK, LOCK_FREE));
                }
                Ph::TxnEndResp => {
                    let (_, abort) = self.cur_txn();
                    let op = if abort { Op::Abort } else { Op::Commit };
                    self.stmt_idx += 1;
                    self.phase = Ph::NextStmt;
                    return Step::Resp(op);
                }

                // ---- non-transactional read --------------------------
                Ph::NtReadInv(v) => {
                    self.phase = Ph::NtReadLoad(v);
                    return Step::Inv(rd_op(v, 0));
                }
                Ph::NtReadLoad(v) => {
                    self.phase = Ph::NtReadResp(v);
                    return Step::Instr(PInstr::Load(addr_of(v)));
                }
                Ph::NtReadResp(v) => {
                    let val = self.decode(last.expect("load result"));
                    self.stmt_idx += 1;
                    self.phase = Ph::NextStmt;
                    return Step::Resp(rd_op(v, val));
                }

                // ---- non-transactional write -------------------------
                Ph::NtWriteInv(v, val) => {
                    self.phase = Ph::NtWriteBody(v, val);
                    return Step::Inv(wr_op(v, val));
                }
                Ph::NtWriteBody(v, val) => match self.spec.nt_write {
                    NtWriteImpl::Plain | NtWriteImpl::VersionedPack => {
                        let word = self.encode_fresh(val);
                        self.phase = Ph::NtWriteResp(v, val);
                        return Step::Instr(PInstr::Store(addr_of(v), word));
                    }
                    NtWriteImpl::Locked => {
                        self.phase = Ph::NtWAcqCheck(v, val);
                        return Step::Instr(PInstr::Cas(
                            GLOBAL_LOCK,
                            LOCK_FREE,
                            lock_owner(self.pid),
                        ));
                    }
                },
                Ph::NtWAcqCheck(v, val) => {
                    if last == Some(1) {
                        self.phase = Ph::NtWStore(v, val);
                        continue;
                    }
                    self.phase = Ph::NtWAcqRetry(v, val);
                    return Step::Instr(PInstr::Load(GLOBAL_LOCK));
                }
                Ph::NtWAcqRetry(v, val) => {
                    if last == Some(LOCK_FREE) {
                        self.phase = Ph::NtWriteBody(v, val);
                    } else {
                        self.phase = Ph::NtWAcqRetry(v, val);
                        return Step::Instr(PInstr::Load(GLOBAL_LOCK));
                    }
                }
                Ph::NtWStore(v, val) => {
                    self.phase = Ph::NtWRelease(v, val);
                    return Step::Instr(PInstr::Store(addr_of(v), val));
                }
                Ph::NtWRelease(v, val) => {
                    self.phase = Ph::NtWriteResp(v, val);
                    return Step::Instr(PInstr::Store(GLOBAL_LOCK, LOCK_FREE));
                }
                Ph::NtWriteResp(v, val) => {
                    self.stmt_idx += 1;
                    self.phase = Ph::NextStmt;
                    return Step::Resp(wr_op(v, val));
                }
            }
            // Results are consumed by the first phase that observes
            // them; subsequent fall-through phases see None.
            last = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::{GlobalLockTm, TmAlgo, VersionedTm, WriteTxnTm};
    use jungle_core::ids::{X, Y};
    use jungle_isa::instr::Instr;
    use jungle_memsim::{DirectedScheduler, HwModel, Machine};

    fn run_single(algo: &dyn TmAlgo, prog: ThreadProg) -> jungle_isa::Trace {
        let m = Machine::new(HwModel::Sc, vec![algo.make_process(ProcId(0), prog)]);
        let mut s = DirectedScheduler::default();
        let r = m.run(&mut s, 10_000);
        assert!(r.completed, "single-threaded run must complete");
        r.trace
    }

    #[test]
    fn global_lock_txn_roundtrip() {
        let prog = ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 7), TxOp::Read(X)]),
            Stmt::NtRead(X),
        ]);
        let trace = run_single(&GlobalLockTm, prog);
        // The transactional read must return the pending write (7), and
        // the final non-transactional read must see the committed 7.
        let reads: Vec<Val> = trace
            .ops()
            .iter()
            .filter_map(|o| o.op.command().and_then(|c| c.read_val()))
            .collect();
        assert_eq!(reads, vec![7, 7]);
        // The commit published with a CAS.
        assert!(trace.instrs().iter().any(|i| matches!(
            i.instr,
            Instr::Cas {
                addr: 0,
                ok: true,
                ..
            }
        )));
    }

    #[test]
    fn aborted_txn_discards_writes() {
        let prog = ThreadProg(vec![
            Stmt::aborting_txn(vec![TxOp::Write(X, 9)]),
            Stmt::NtRead(X),
        ]);
        let trace = run_single(&GlobalLockTm, prog);
        let reads: Vec<Val> = trace
            .ops()
            .iter()
            .filter_map(|o| o.op.command().and_then(|c| c.read_val()))
            .collect();
        assert_eq!(reads, vec![0], "aborted write must not be visible");
    }

    #[test]
    fn versioned_nt_write_is_single_store() {
        let prog = ThreadProg(vec![Stmt::NtWrite(X, 5), Stmt::NtRead(X)]);
        let trace = run_single(&VersionedTm, prog);
        // Exactly one store, and the read decodes the packed value.
        let stores: Vec<&Instr> = trace
            .instrs()
            .iter()
            .filter_map(|i| match &i.instr {
                s @ Instr::Store { .. } => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(stores.len(), 1);
        if let Instr::Store { val, .. } = stores[0] {
            assert_eq!(packed::value(*val), 5);
            assert_eq!(packed::pid(*val), ProcId(0));
        }
        let reads: Vec<Val> = trace
            .ops()
            .iter()
            .filter_map(|o| o.op.command().and_then(|c| c.read_val()))
            .collect();
        assert_eq!(reads, vec![5]);
    }

    #[test]
    fn versioned_txn_publishes_packed_words() {
        let prog = ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 3)]), Stmt::NtRead(X)]);
        let trace = run_single(&VersionedTm, prog);
        let reads: Vec<Val> = trace
            .ops()
            .iter()
            .filter_map(|o| o.op.command().and_then(|c| c.read_val()))
            .collect();
        assert_eq!(reads, vec![3]);
    }

    #[test]
    fn write_txn_nt_write_takes_lock() {
        let prog = ThreadProg(vec![Stmt::NtWrite(Y, 4)]);
        let trace = run_single(&WriteTxnTm, prog);
        assert!(trace.instrs().iter().any(|i| matches!(
            i.instr,
            Instr::Cas {
                addr: GLOBAL_LOCK,
                ok: true,
                ..
            }
        )));
        // Lock released afterwards.
        assert!(trace.instrs().iter().any(|i| matches!(
            i.instr,
            Instr::Store {
                addr: GLOBAL_LOCK,
                val: LOCK_FREE
            }
        )));
    }

    #[test]
    fn two_sequential_txns_same_thread() {
        let prog = ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 1)]),
            Stmt::txn(vec![TxOp::Read(X), TxOp::Write(Y, 2)]),
            Stmt::NtRead(Y),
        ]);
        let trace = run_single(&GlobalLockTm, prog);
        let reads: Vec<Val> = trace
            .ops()
            .iter()
            .filter_map(|o| o.op.command().and_then(|c| c.read_val()))
            .collect();
        assert_eq!(reads, vec![1, 2]);
    }

    #[test]
    fn contended_lock_eventually_acquired() {
        // Two transactions on two CPUs; a fair-ish random scheduler must
        // complete both.
        use jungle_memsim::RandomScheduler;
        let prog1 = ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)])]);
        let prog2 = ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 2)])]);
        let m = Machine::new(
            HwModel::Sc,
            vec![
                GlobalLockTm.make_process(ProcId(0), prog1),
                GlobalLockTm.make_process(ProcId(1), prog2),
            ],
        );
        let mut s = RandomScheduler::new(3);
        let r = m.run(&mut s, 100_000);
        assert!(r.completed);
        assert_eq!(
            r.trace
                .ops()
                .iter()
                .filter(|o| matches!(o.op, Op::Commit))
                .count(),
            2
        );
    }
}
