//! A lazy, TL2-style weakly atomic TM as a model-checkable interpreter
//! — the negative exhibit for the paper's §1 motivation.
//!
//! Per-variable version-locks (`version << 1 | locked`) live at
//! [`meta_of`](crate::layout::meta_of). Reads are optimistic (sample
//! lock → load data → revalidate); writes are buffered; commit locks
//! the write set, validates the read set, publishes, and releases with
//! bumped versions. A commit that fails validation becomes an **abort**
//! operation in the trace and the transaction retries from `start`.
//!
//! Non-transactional operations are plain loads and stores with no
//! protocol — which is exactly what makes this TM *weakly atomic*: the
//! window between read-set validation and write-back is invisible to
//! transactions but wide open to non-transactional writes. The
//! privatization experiment in `theorems` drives a schedule through
//! that window and the checker confirms that **no memory model**
//! rescues the resulting history.

use super::TmAlgo;
use crate::layout::{addr_of, meta_of};
use crate::program::{Stmt, ThreadProg, TxOp};
use jungle_core::ids::{ProcId, Val, Var};
use jungle_core::op::{Command, Op};
use jungle_isa::tm::Instrumentation;
use jungle_memsim::process::{PInstr, Process, Resume, Step};

fn locked(w: u64) -> bool {
    w & 1 == 1
}

fn version(w: u64) -> u64 {
    w >> 1
}

fn enc(version: u64, locked: bool) -> u64 {
    (version << 1) | u64::from(locked)
}

fn rd_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Read { var, val })
}

fn wr_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Write { var, val })
}

/// The lazy TL2-style TM algorithm (model-checker form).
#[derive(Clone, Copy, Debug, Default)]
pub struct LazyTl2Tm;

impl TmAlgo for LazyTl2Tm {
    fn name(&self) -> &'static str {
        "lazy-tl2"
    }

    fn instrumentation(&self) -> Instrumentation {
        // Plain non-transactional accesses — with no guarantee attached.
        Instrumentation::Uninstrumented
    }

    fn make_process(&self, pid: ProcId, prog: ThreadProg) -> Box<dyn Process> {
        Box::new(Tl2Process::new(pid, prog))
    }
}

#[derive(Clone, Copy, Debug)]
enum Ph {
    NextStmt,
    StartInv,
    StartResp,
    GuardReadInv(Var, Val),
    TxnOpNext,
    // Optimistic read: v1 := vlock; data; v2 := vlock; v1 == v2?
    ReadInv(Var),
    ReadEntry(Var, Option<Val>),
    ReadV1Issue(Var, Option<Val>),
    ReadV1Check(Var, Option<Val>),
    ReadData(Var, Option<Val>, u64),
    ReadV2Issue(Var, Option<Val>, u64, Val),
    ReadV2Check(Var, Option<Val>, u64, Val),
    // Buffered write.
    WriteInv(Var, Val),
    WriteResp(Var, Val),
    // Commit: lock write set → validate read set → publish → release.
    CommitInv,
    LockIssue(usize),
    LockCheck(usize),
    LockCas(usize, u64),
    ValidateIssue(usize),
    ValidateCheck(usize),
    Publish(usize),
    Release(usize),
    CommitResp,
    // Validation failure: roll back locks, abort, retry the statement.
    FailRelease(usize),
    FailResp,
    AbortInv,
    AbortResp,
    // Non-transactional (uninstrumented).
    NtReadInv(Var),
    NtReadLoad(Var),
    NtReadResp(Var),
    NtWriteInv(Var, Val),
    NtWriteStore(Var, Val),
    NtWriteResp(Var, Val),
    Finished,
}

struct Tl2Process {
    stmts: Vec<Stmt>,
    stmt_idx: usize,
    op_idx: usize,
    phase: Ph,
    /// `(var, version-at-read)`.
    readset: Vec<(Var, u64)>,
    writeset: Vec<(Var, Val)>,
    /// `(var, pre-lock word)` held during commit.
    locks: Vec<(Var, u64)>,
    skip_body: bool,
}

impl Tl2Process {
    fn new(_pid: ProcId, prog: ThreadProg) -> Self {
        Tl2Process {
            stmts: prog.0,
            stmt_idx: 0,
            op_idx: 0,
            phase: Ph::NextStmt,
            readset: Vec::new(),
            writeset: Vec::new(),
            locks: Vec::new(),
            skip_body: false,
        }
    }

    fn cur_txn(&self) -> (&[TxOp], bool) {
        match &self.stmts[self.stmt_idx] {
            Stmt::Txn { ops, abort } => (ops, *abort),
            Stmt::TxnGuard { ops, .. } => (ops, false),
            _ => unreachable!("cur_txn outside a transaction"),
        }
    }

    fn ws_get(&self, v: Var) -> Option<Val> {
        self.writeset.iter().find(|(x, _)| *x == v).map(|(_, w)| *w)
    }

    fn rs_version(&self, v: Var) -> Option<u64> {
        self.readset.iter().find(|(x, _)| *x == v).map(|(_, w)| *w)
    }

    fn locked_by_me(&self, v: Var) -> bool {
        self.locks.iter().any(|(x, _)| *x == v)
    }

    fn finish_read(&mut self, var: Var, val: Val, guard: Option<Val>) -> Step {
        if let Some(expect) = guard {
            self.skip_body = val != expect;
        } else {
            self.op_idx += 1;
        }
        self.phase = Ph::TxnOpNext;
        Step::Resp(rd_op(var, val))
    }
}

impl Process for Tl2Process {
    fn next(&mut self, last: Resume) -> Step {
        let mut last = last;
        loop {
            match self.phase {
                Ph::Finished => return Step::Done,
                Ph::NextStmt => {
                    self.op_idx = 0;
                    self.skip_body = false;
                    self.readset.clear();
                    self.writeset.clear();
                    debug_assert!(self.locks.is_empty());
                    if self.stmt_idx >= self.stmts.len() {
                        self.phase = Ph::Finished;
                        continue;
                    }
                    match &self.stmts[self.stmt_idx] {
                        Stmt::Txn { .. } | Stmt::TxnGuard { .. } => self.phase = Ph::StartInv,
                        Stmt::NtRead(v) => self.phase = Ph::NtReadInv(*v),
                        Stmt::NtWrite(v, val) => self.phase = Ph::NtWriteInv(*v, *val),
                    }
                }

                Ph::StartInv => {
                    self.phase = Ph::StartResp;
                    return Step::Inv(Op::Start);
                }
                Ph::StartResp => {
                    self.phase = match &self.stmts[self.stmt_idx] {
                        Stmt::TxnGuard { guard, expect, .. } => Ph::GuardReadInv(*guard, *expect),
                        _ => Ph::TxnOpNext,
                    };
                    return Step::Resp(Op::Start);
                }
                Ph::GuardReadInv(g, e) => {
                    self.phase = Ph::ReadEntry(g, Some(e));
                    return Step::Inv(rd_op(g, 0));
                }
                Ph::TxnOpNext => {
                    let (ops, abort) = self.cur_txn();
                    if self.skip_body || self.op_idx >= ops.len() {
                        self.phase = if abort { Ph::AbortInv } else { Ph::CommitInv };
                        continue;
                    }
                    match ops[self.op_idx] {
                        TxOp::Read(v) => self.phase = Ph::ReadInv(v),
                        TxOp::Write(v, val) => self.phase = Ph::WriteInv(v, val),
                    }
                }

                // ---- optimistic read ---------------------------------
                Ph::ReadInv(v) => {
                    self.phase = Ph::ReadEntry(v, None);
                    return Step::Inv(rd_op(v, 0));
                }
                Ph::ReadEntry(v, guard) => {
                    if let Some(val) = self.ws_get(v) {
                        return self.finish_read(v, val, guard);
                    }
                    self.phase = Ph::ReadV1Issue(v, guard);
                }
                Ph::ReadV1Issue(v, guard) => {
                    self.phase = Ph::ReadV1Check(v, guard);
                    return Step::Instr(PInstr::Load(meta_of(v)));
                }
                Ph::ReadV1Check(v, guard) => {
                    let w = last.expect("load result");
                    if locked(w) {
                        self.phase = Ph::ReadV1Issue(v, guard); // spin
                        continue;
                    }
                    self.phase = Ph::ReadData(v, guard, w);
                    return Step::Instr(PInstr::Load(addr_of(v)));
                }
                Ph::ReadData(v, guard, v1) => {
                    let val = last.expect("load result");
                    self.phase = Ph::ReadV2Issue(v, guard, v1, val);
                }
                Ph::ReadV2Issue(v, guard, v1, val) => {
                    self.phase = Ph::ReadV2Check(v, guard, v1, val);
                    return Step::Instr(PInstr::Load(meta_of(v)));
                }
                Ph::ReadV2Check(v, guard, v1, val) => {
                    let w2 = last.expect("load result");
                    if w2 != v1 {
                        self.phase = Ph::ReadV1Issue(v, guard); // re-read
                        continue;
                    }
                    if self.rs_version(v).is_none() {
                        self.readset.push((v, version(v1)));
                    }
                    return self.finish_read(v, val, guard);
                }

                // ---- buffered write ----------------------------------
                Ph::WriteInv(v, val) => {
                    self.phase = Ph::WriteResp(v, val);
                    return Step::Inv(wr_op(v, val));
                }
                Ph::WriteResp(v, val) => {
                    match self.writeset.iter_mut().find(|(x, _)| *x == v) {
                        Some(e) => e.1 = val,
                        None => self.writeset.push((v, val)),
                    }
                    self.op_idx += 1;
                    self.phase = Ph::TxnOpNext;
                    return Step::Resp(wr_op(v, val));
                }

                // ---- commit ------------------------------------------
                Ph::CommitInv => {
                    self.phase = Ph::LockIssue(0);
                    return Step::Inv(Op::Commit);
                }
                Ph::LockIssue(i) => {
                    if i < self.writeset.len() {
                        self.phase = Ph::LockCheck(i);
                        return Step::Instr(PInstr::Load(meta_of(self.writeset[i].0)));
                    }
                    self.phase = Ph::ValidateIssue(0);
                }
                Ph::LockCheck(i) => {
                    let w = last.expect("load result");
                    if locked(w) {
                        self.phase = Ph::LockIssue(i); // spin on the holder
                        continue;
                    }
                    self.phase = Ph::LockCas(i, w);
                    return Step::Instr(PInstr::Cas(
                        meta_of(self.writeset[i].0),
                        w,
                        enc(version(w), true),
                    ));
                }
                Ph::LockCas(i, w) => {
                    if last == Some(1) {
                        self.locks.push((self.writeset[i].0, w));
                        self.phase = Ph::LockIssue(i + 1);
                    } else {
                        self.phase = Ph::LockIssue(i);
                    }
                }
                Ph::ValidateIssue(j) => {
                    if j < self.readset.len() {
                        self.phase = Ph::ValidateCheck(j);
                        return Step::Instr(PInstr::Load(meta_of(self.readset[j].0)));
                    }
                    self.phase = Ph::Publish(0);
                }
                Ph::ValidateCheck(j) => {
                    let w = last.expect("load result");
                    let (v, ver_at_read) = self.readset[j];
                    let ok = version(w) == ver_at_read && (!locked(w) || self.locked_by_me(v));
                    if ok {
                        self.phase = Ph::ValidateIssue(j + 1);
                    } else {
                        self.phase = Ph::FailRelease(0);
                    }
                }
                Ph::Publish(k) => {
                    if k < self.writeset.len() {
                        let (v, val) = self.writeset[k];
                        self.phase = Ph::Publish(k + 1);
                        return Step::Instr(PInstr::Store(addr_of(v), val));
                    }
                    self.phase = Ph::Release(0);
                }
                Ph::Release(k) => {
                    if k < self.locks.len() {
                        let (v, w) = self.locks[k];
                        self.phase = Ph::Release(k + 1);
                        return Step::Instr(PInstr::Store(meta_of(v), enc(version(w) + 1, false)));
                    }
                    self.phase = Ph::CommitResp;
                }
                Ph::CommitResp => {
                    self.locks.clear();
                    self.stmt_idx += 1;
                    self.phase = Ph::NextStmt;
                    return Step::Resp(Op::Commit);
                }

                // ---- validation failure: abort and retry -------------
                Ph::FailRelease(k) => {
                    if k < self.locks.len() {
                        let (v, w) = self.locks[k];
                        self.phase = Ph::FailRelease(k + 1);
                        return Step::Instr(PInstr::Store(meta_of(v), w));
                    }
                    self.phase = Ph::FailResp;
                }
                Ph::FailResp => {
                    // The operation that began as a commit responds as an
                    // abort (the invocation marker is backpatched), and
                    // the statement retries from a fresh `start`.
                    self.locks.clear();
                    self.phase = Ph::NextStmt; // same stmt_idx → retry
                    return Step::Resp(Op::Abort);
                }

                // ---- program-level abort ------------------------------
                Ph::AbortInv => {
                    self.phase = Ph::AbortResp;
                    return Step::Inv(Op::Abort);
                }
                Ph::AbortResp => {
                    self.stmt_idx += 1;
                    self.phase = Ph::NextStmt;
                    return Step::Resp(Op::Abort);
                }

                // ---- non-transactional (plain) ------------------------
                Ph::NtReadInv(v) => {
                    self.phase = Ph::NtReadLoad(v);
                    return Step::Inv(rd_op(v, 0));
                }
                Ph::NtReadLoad(v) => {
                    self.phase = Ph::NtReadResp(v);
                    return Step::Instr(PInstr::Load(addr_of(v)));
                }
                Ph::NtReadResp(v) => {
                    let val = last.expect("load result");
                    self.stmt_idx += 1;
                    self.phase = Ph::NextStmt;
                    return Step::Resp(rd_op(v, val));
                }
                Ph::NtWriteInv(v, val) => {
                    self.phase = Ph::NtWriteStore(v, val);
                    return Step::Inv(wr_op(v, val));
                }
                Ph::NtWriteStore(v, val) => {
                    self.phase = Ph::NtWriteResp(v, val);
                    return Step::Instr(PInstr::Store(addr_of(v), val));
                }
                Ph::NtWriteResp(v, val) => {
                    self.stmt_idx += 1;
                    self.phase = Ph::NextStmt;
                    return Step::Resp(wr_op(v, val));
                }
            }
            last = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, Stmt};
    use crate::verify::{check_random, CheckKind, SweepSeeds};
    use jungle_core::ids::{X, Y};
    use jungle_core::model::Sc;
    use jungle_core::registry::ModelEntry;
    use jungle_memsim::{DirectedScheduler, HwModel, Machine, RandomScheduler};

    fn run_single(prog: ThreadProg) -> jungle_isa::Trace {
        let m = Machine::new(HwModel::Sc, vec![LazyTl2Tm.make_process(ProcId(0), prog)]);
        let mut s = DirectedScheduler::default();
        let r = m.run(&mut s, 50_000);
        assert!(r.completed);
        r.trace
    }

    #[test]
    fn single_thread_roundtrip() {
        let trace = run_single(ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 7), TxOp::Read(X), TxOp::Write(Y, 8)]),
            Stmt::NtRead(Y),
        ]));
        let reads: Vec<Val> = trace
            .ops()
            .iter()
            .filter_map(|o| o.op.command().and_then(|c| c.read_val()))
            .collect();
        assert_eq!(reads, vec![7, 8]);
    }

    #[test]
    fn conflicting_txns_retry_and_both_commit() {
        let p1 = ThreadProg(vec![Stmt::txn(vec![TxOp::Read(X), TxOp::Write(X, 1)])]);
        let p2 = ThreadProg(vec![Stmt::txn(vec![TxOp::Read(X), TxOp::Write(X, 2)])]);
        let m = Machine::new(
            HwModel::Sc,
            vec![
                LazyTl2Tm.make_process(ProcId(0), p1),
                LazyTl2Tm.make_process(ProcId(1), p2),
            ],
        );
        let mut s = RandomScheduler::new(11);
        let r = m.run(&mut s, 100_000);
        assert!(r.completed);
        let commits = r
            .trace
            .ops()
            .iter()
            .filter(|o| matches!(o.op, Op::Commit))
            .count();
        assert_eq!(commits, 2);
    }

    #[test]
    fn purely_transactional_random_checks_hold() {
        // With single-read transactions there are no zombie snapshots,
        // and the retry-on-validation-failure protocol keeps histories
        // opaque.
        let program = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Read(X), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::txn(vec![TxOp::Read(Y), TxOp::Write(X, 1)])]),
        ]);
        let v = check_random(
            &program,
            &LazyTl2Tm,
            &ModelEntry::checker_game(&Sc),
            CheckKind::Opacity,
            SweepSeeds::new(0, 150),
            50_000,
        );
        assert!(v.ok, "violation: {:?}", v.violation);
    }
}
