//! The §6.1 strong-atomicity TM (Shpeisman et al.) as a model-checkable
//! interpreter.
//!
//! Per-variable *transactional records* live at
//! [`meta_of`](crate::layout::meta_of): **shared** (reader count),
//! **exclusive** (owned by a writing transaction) or **exclusive
//! anonymous** (owned by a non-transactional write). Transactions
//! acquire records at encounter time (strict two-phase locking),
//! publish buffered writes at commit while holding every record, and
//! only then release. Non-transactional writes take anonymous
//! ownership around their store; non-transactional reads wait while a
//! record is transactionally exclusive — unless the algorithm is
//! constructed [`StrongTm::optimized`], which leaves reads as plain
//! loads (§6.1's read de-instrumentation for models outside
//! `Mrr ∪ Mwr`).
//!
//! Unlike the real-threads implementation in `jungle-stm` (which aborts
//! and retries on contention), this interpreter *spins*: aborting is a
//! liveness optimization irrelevant to the safety properties being
//! model-checked, and spinning keeps every operation inside the paper's
//! operation-trace grammar. Schedules that deadlock (e.g. two
//! transactions upgrading the same record) hit the exploration step
//! bound and are excluded — they produce no completed trace to check.

use super::TmAlgo;
use crate::layout::{addr_of, meta_of};
use crate::program::{Stmt, ThreadProg, TxOp};
use jungle_core::ids::{ProcId, Val, Var};
use jungle_core::op::{Command, Op};
use jungle_isa::tm::Instrumentation;
use jungle_memsim::process::{PInstr, Process, Resume, Step};

const TAG_SHIFT: u32 = 62;
const TAG_SHARED: u64 = 0;
const TAG_EXCL: u64 = 1;
const TAG_ANON: u64 = 2;

fn tag(w: u64) -> u64 {
    w >> TAG_SHIFT
}

fn readers(w: u64) -> u64 {
    w & !(3 << TAG_SHIFT)
}

fn enc_shared(n: u64) -> u64 {
    n
}

fn enc_excl(p: ProcId) -> u64 {
    (TAG_EXCL << TAG_SHIFT) | (u64::from(p.0) + 1)
}

fn enc_anon(p: ProcId) -> u64 {
    (TAG_ANON << TAG_SHIFT) | (u64::from(p.0) + 1)
}

fn rd_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Read { var, val })
}

fn wr_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Write { var, val })
}

/// The strong-atomicity TM algorithm (model-checker form).
#[derive(Clone, Copy, Debug)]
pub struct StrongTm {
    optimized_reads: bool,
}

impl StrongTm {
    /// Fully instrumented: opacity parametrized by SC.
    pub const fn new() -> Self {
        StrongTm {
            optimized_reads: false,
        }
    }

    /// Read-de-instrumented variant (§6.1): plain non-transactional
    /// loads; correct for `M ∉ Mrr ∪ Mwr`.
    pub const fn optimized() -> Self {
        StrongTm {
            optimized_reads: true,
        }
    }
}

impl Default for StrongTm {
    fn default() -> Self {
        StrongTm::new()
    }
}

impl TmAlgo for StrongTm {
    fn name(&self) -> &'static str {
        if self.optimized_reads {
            "strong-optimized"
        } else {
            "strong"
        }
    }

    fn instrumentation(&self) -> Instrumentation {
        if self.optimized_reads {
            Instrumentation::UnboundedWrites
        } else {
            Instrumentation::Full
        }
    }

    fn make_process(&self, pid: ProcId, prog: ThreadProg) -> Box<dyn Process> {
        Box::new(StrongProcess::new(*self, pid, prog))
    }
}

#[derive(Clone, Copy, Debug)]
enum Ph {
    NextStmt,
    StartInv,
    StartResp,
    GuardReadInv(Var, Val),
    TxnOpNext,
    // Transactional read (guard carries the expected value when this
    // read decides a TxnGuard body).
    ReadInv(Var),
    ReadEntry(Var, Option<Val>),
    ReadMetaIssue(Var, Option<Val>),
    ReadMetaCheck(Var, Option<Val>),
    ReadCasCheck(Var, Option<Val>),
    ReadDataIssue(Var, Option<Val>),
    ReadData(Var, Option<Val>),
    // Transactional write.
    WriteInv(Var, Val),
    WriteEntry(Var, Val),
    WriteMetaIssue(Var, Val),
    WriteMetaCheck(Var, Val),
    WriteCasCheck(Var, Val),
    WriteRecord(Var, Val),
    // Commit / abort.
    CommitInv,
    AbortInv,
    CommitStore(usize),
    ReleaseExcl(usize),
    ReleaseSharedIssue(usize),
    ReleaseSharedCheck(usize),
    ReleaseSharedCas(usize),
    TxnEndResp(bool),
    // Non-transactional read.
    NtReadInv(Var),
    NtReadCheckIssue(Var),
    NtReadCheck(Var),
    NtReadDataIssue(Var),
    NtReadData(Var),
    // Non-transactional write.
    NtWriteInv(Var, Val),
    NtWMetaIssue(Var, Val),
    NtWMetaCheck(Var, Val),
    NtWCasCheck(Var, Val),
    NtWStore(Var, Val),
    NtWRelease(Var, Val),
    NtWriteResp(Var, Val),
    Finished,
}

struct StrongProcess {
    algo: StrongTm,
    pid: ProcId,
    stmts: Vec<Stmt>,
    stmt_idx: usize,
    op_idx: usize,
    phase: Ph,
    readset: Vec<(Var, Val)>,
    writeset: Vec<(Var, Val)>,
    locks: Vec<Var>,
    shared: Vec<Var>,
    skip_body: bool,
}

impl StrongProcess {
    fn new(algo: StrongTm, pid: ProcId, prog: ThreadProg) -> Self {
        StrongProcess {
            algo,
            pid,
            stmts: prog.0,
            stmt_idx: 0,
            op_idx: 0,
            phase: Ph::NextStmt,
            readset: Vec::new(),
            writeset: Vec::new(),
            locks: Vec::new(),
            shared: Vec::new(),
            skip_body: false,
        }
    }

    fn cur_txn(&self) -> (&[TxOp], bool) {
        match &self.stmts[self.stmt_idx] {
            Stmt::Txn { ops, abort } => (ops, *abort),
            Stmt::TxnGuard { ops, .. } => (ops, false),
            _ => unreachable!("cur_txn outside a transaction"),
        }
    }

    fn rs_get(&self, v: Var) -> Option<Val> {
        self.readset.iter().find(|(x, _)| *x == v).map(|(_, w)| *w)
    }

    fn ws_get(&self, v: Var) -> Option<Val> {
        self.writeset.iter().find(|(x, _)| *x == v).map(|(_, w)| *w)
    }

    fn finish_read(&mut self, var: Var, val: Val, guard: Option<Val>) -> Step {
        if let Some(expect) = guard {
            self.skip_body = val != expect;
        } else {
            self.op_idx += 1;
        }
        self.phase = Ph::TxnOpNext;
        Step::Resp(rd_op(var, val))
    }
}

impl Process for StrongProcess {
    fn next(&mut self, last: Resume) -> Step {
        let mut last = last;
        loop {
            match self.phase {
                Ph::Finished => return Step::Done,
                Ph::NextStmt => {
                    self.op_idx = 0;
                    self.skip_body = false;
                    self.readset.clear();
                    self.writeset.clear();
                    debug_assert!(self.locks.is_empty() && self.shared.is_empty());
                    if self.stmt_idx >= self.stmts.len() {
                        self.phase = Ph::Finished;
                        continue;
                    }
                    match &self.stmts[self.stmt_idx] {
                        Stmt::Txn { .. } | Stmt::TxnGuard { .. } => self.phase = Ph::StartInv,
                        Stmt::NtRead(v) => self.phase = Ph::NtReadInv(*v),
                        Stmt::NtWrite(v, val) => self.phase = Ph::NtWriteInv(*v, *val),
                    }
                }

                // ---- transaction start (bookkeeping only) ------------
                Ph::StartInv => {
                    self.phase = Ph::StartResp;
                    return Step::Inv(Op::Start);
                }
                Ph::StartResp => {
                    self.phase = match &self.stmts[self.stmt_idx] {
                        Stmt::TxnGuard { guard, expect, .. } => Ph::GuardReadInv(*guard, *expect),
                        _ => Ph::TxnOpNext,
                    };
                    return Step::Resp(Op::Start);
                }
                Ph::GuardReadInv(g, e) => {
                    self.phase = Ph::ReadEntry(g, Some(e));
                    return Step::Inv(rd_op(g, 0));
                }
                Ph::TxnOpNext => {
                    let (ops, abort) = self.cur_txn();
                    if self.skip_body || self.op_idx >= ops.len() {
                        self.phase = if abort { Ph::AbortInv } else { Ph::CommitInv };
                        continue;
                    }
                    match ops[self.op_idx] {
                        TxOp::Read(v) => self.phase = Ph::ReadInv(v),
                        TxOp::Write(v, val) => self.phase = Ph::WriteInv(v, val),
                    }
                }

                // ---- transactional read ------------------------------
                Ph::ReadInv(v) => {
                    self.phase = Ph::ReadEntry(v, None);
                    return Step::Inv(rd_op(v, 0));
                }
                Ph::ReadEntry(v, guard) => {
                    if let Some(val) = self.ws_get(v).or_else(|| self.rs_get(v)) {
                        return self.finish_read(v, val, guard);
                    }
                    if self.locks.contains(&v) || self.shared.contains(&v) {
                        self.phase = Ph::ReadDataIssue(v, guard);
                        continue;
                    }
                    self.phase = Ph::ReadMetaIssue(v, guard);
                }
                Ph::ReadMetaIssue(v, guard) => {
                    self.phase = Ph::ReadMetaCheck(v, guard);
                    return Step::Instr(PInstr::Load(meta_of(v)));
                }
                Ph::ReadMetaCheck(v, guard) => {
                    let w = last.expect("load result");
                    if tag(w) == TAG_SHARED {
                        self.phase = Ph::ReadCasCheck(v, guard);
                        return Step::Instr(PInstr::Cas(meta_of(v), w, enc_shared(readers(w) + 1)));
                    }
                    self.phase = Ph::ReadMetaIssue(v, guard); // spin
                }
                Ph::ReadCasCheck(v, guard) => {
                    if last == Some(1) {
                        self.shared.push(v);
                        self.phase = Ph::ReadDataIssue(v, guard);
                    } else {
                        self.phase = Ph::ReadMetaIssue(v, guard);
                    }
                }
                Ph::ReadDataIssue(v, guard) => {
                    self.phase = Ph::ReadData(v, guard);
                    return Step::Instr(PInstr::Load(addr_of(v)));
                }
                Ph::ReadData(v, guard) => {
                    let val = last.expect("load result");
                    if self.rs_get(v).is_none() {
                        self.readset.push((v, val));
                    }
                    return self.finish_read(v, val, guard);
                }

                // ---- transactional write -----------------------------
                Ph::WriteInv(v, val) => {
                    self.phase = Ph::WriteEntry(v, val);
                    return Step::Inv(wr_op(v, val));
                }
                Ph::WriteEntry(v, val) => {
                    if self.locks.contains(&v) {
                        self.phase = Ph::WriteRecord(v, val);
                        continue;
                    }
                    self.phase = Ph::WriteMetaIssue(v, val);
                }
                Ph::WriteMetaIssue(v, val) => {
                    self.phase = Ph::WriteMetaCheck(v, val);
                    return Step::Instr(PInstr::Load(meta_of(v)));
                }
                Ph::WriteMetaCheck(v, val) => {
                    let w = last.expect("load result");
                    let holding_shared = self.shared.contains(&v);
                    let want = if holding_shared { 1 } else { 0 };
                    if tag(w) == TAG_SHARED && readers(w) == want {
                        self.phase = Ph::WriteCasCheck(v, val);
                        return Step::Instr(PInstr::Cas(meta_of(v), w, enc_excl(self.pid)));
                    }
                    self.phase = Ph::WriteMetaIssue(v, val); // spin
                }
                Ph::WriteCasCheck(v, val) => {
                    if last == Some(1) {
                        self.shared.retain(|&x| x != v);
                        self.locks.push(v);
                        self.phase = Ph::WriteRecord(v, val);
                    } else {
                        self.phase = Ph::WriteMetaIssue(v, val);
                    }
                }
                Ph::WriteRecord(v, val) => {
                    match self.writeset.iter_mut().find(|(x, _)| *x == v) {
                        Some(e) => e.1 = val,
                        None => self.writeset.push((v, val)),
                    }
                    self.op_idx += 1;
                    self.phase = Ph::TxnOpNext;
                    return Step::Resp(wr_op(v, val));
                }

                // ---- commit / abort ----------------------------------
                Ph::CommitInv => {
                    self.phase = Ph::CommitStore(0);
                    return Step::Inv(Op::Commit);
                }
                Ph::AbortInv => {
                    // Aborts publish nothing; release straight away.
                    self.phase = Ph::ReleaseExcl(0);
                    return Step::Inv(Op::Abort);
                }
                Ph::CommitStore(i) => {
                    if i < self.writeset.len() {
                        let (v, val) = self.writeset[i];
                        self.phase = Ph::CommitStore(i + 1);
                        return Step::Instr(PInstr::Store(addr_of(v), val));
                    }
                    self.phase = Ph::ReleaseExcl(0);
                }
                Ph::ReleaseExcl(i) => {
                    if i < self.locks.len() {
                        let v = self.locks[i];
                        self.phase = Ph::ReleaseExcl(i + 1);
                        return Step::Instr(PInstr::Store(meta_of(v), enc_shared(0)));
                    }
                    self.phase = Ph::ReleaseSharedIssue(0);
                }
                Ph::ReleaseSharedIssue(i) => {
                    if i < self.shared.len() {
                        self.phase = Ph::ReleaseSharedCheck(i);
                        return Step::Instr(PInstr::Load(meta_of(self.shared[i])));
                    }
                    let (_, abort) = self.cur_txn();
                    self.phase = Ph::TxnEndResp(abort);
                }
                Ph::ReleaseSharedCheck(i) => {
                    let w = last.expect("load result");
                    debug_assert_eq!(tag(w), TAG_SHARED);
                    self.phase = Ph::ReleaseSharedCas(i);
                    return Step::Instr(PInstr::Cas(
                        meta_of(self.shared[i]),
                        w,
                        enc_shared(readers(w) - 1),
                    ));
                }
                Ph::ReleaseSharedCas(i) => {
                    if last == Some(1) {
                        self.phase = Ph::ReleaseSharedIssue(i + 1);
                    } else {
                        self.phase = Ph::ReleaseSharedIssue(i); // retry
                    }
                }
                Ph::TxnEndResp(abort) => {
                    self.locks.clear();
                    self.shared.clear();
                    self.stmt_idx += 1;
                    self.phase = Ph::NextStmt;
                    return Step::Resp(if abort { Op::Abort } else { Op::Commit });
                }

                // ---- non-transactional read --------------------------
                Ph::NtReadInv(v) => {
                    self.phase = if self.algo.optimized_reads {
                        Ph::NtReadDataIssue(v)
                    } else {
                        Ph::NtReadCheckIssue(v)
                    };
                    return Step::Inv(rd_op(v, 0));
                }
                Ph::NtReadCheckIssue(v) => {
                    self.phase = Ph::NtReadCheck(v);
                    return Step::Instr(PInstr::Load(meta_of(v)));
                }
                Ph::NtReadCheck(v) => {
                    let w = last.expect("load result");
                    if tag(w) == TAG_EXCL {
                        self.phase = Ph::NtReadCheckIssue(v); // wait
                    } else {
                        self.phase = Ph::NtReadDataIssue(v);
                    }
                }
                Ph::NtReadDataIssue(v) => {
                    self.phase = Ph::NtReadData(v);
                    return Step::Instr(PInstr::Load(addr_of(v)));
                }
                Ph::NtReadData(v) => {
                    let val = last.expect("load result");
                    self.stmt_idx += 1;
                    self.phase = Ph::NextStmt;
                    return Step::Resp(rd_op(v, val));
                }

                // ---- non-transactional write -------------------------
                Ph::NtWriteInv(v, val) => {
                    self.phase = Ph::NtWMetaIssue(v, val);
                    return Step::Inv(wr_op(v, val));
                }
                Ph::NtWMetaIssue(v, val) => {
                    self.phase = Ph::NtWMetaCheck(v, val);
                    return Step::Instr(PInstr::Load(meta_of(v)));
                }
                Ph::NtWMetaCheck(v, val) => {
                    let w = last.expect("load result");
                    if tag(w) == TAG_SHARED && readers(w) == 0 {
                        self.phase = Ph::NtWCasCheck(v, val);
                        return Step::Instr(PInstr::Cas(meta_of(v), w, enc_anon(self.pid)));
                    }
                    self.phase = Ph::NtWMetaIssue(v, val); // wait
                }
                Ph::NtWCasCheck(v, val) => {
                    if last == Some(1) {
                        self.phase = Ph::NtWStore(v, val);
                    } else {
                        self.phase = Ph::NtWMetaIssue(v, val);
                    }
                }
                Ph::NtWStore(v, val) => {
                    self.phase = Ph::NtWRelease(v, val);
                    return Step::Instr(PInstr::Store(addr_of(v), val));
                }
                Ph::NtWRelease(v, val) => {
                    self.phase = Ph::NtWriteResp(v, val);
                    return Step::Instr(PInstr::Store(meta_of(v), enc_shared(0)));
                }
                Ph::NtWriteResp(v, val) => {
                    self.stmt_idx += 1;
                    self.phase = Ph::NextStmt;
                    return Step::Resp(wr_op(v, val));
                }
            }
            last = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, Stmt};
    use crate::verify::{check_random, CheckKind, SweepSeeds};
    use jungle_core::ids::{X, Y};
    use jungle_core::model::Sc;
    use jungle_core::registry::ModelEntry;
    use jungle_memsim::{DirectedScheduler, HwModel, Machine};

    fn run_single(prog: ThreadProg) -> jungle_isa::Trace {
        let m = Machine::new(
            HwModel::Sc,
            vec![StrongTm::new().make_process(ProcId(0), prog)],
        );
        let mut s = DirectedScheduler::default();
        let r = m.run(&mut s, 50_000);
        assert!(r.completed);
        r.trace
    }

    #[test]
    fn single_thread_roundtrip() {
        let trace = run_single(ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 7), TxOp::Read(X)]),
            Stmt::NtRead(X),
        ]));
        let reads: Vec<Val> = trace
            .ops()
            .iter()
            .filter_map(|o| o.op.command().and_then(|c| c.read_val()))
            .collect();
        assert_eq!(reads, vec![7, 7]);
    }

    #[test]
    fn aborted_txn_invisible() {
        let trace = run_single(ThreadProg(vec![
            Stmt::aborting_txn(vec![TxOp::Write(X, 9)]),
            Stmt::NtRead(X),
        ]));
        let reads: Vec<Val> = trace
            .ops()
            .iter()
            .filter_map(|o| o.op.command().and_then(|c| c.read_val()))
            .collect();
        assert_eq!(reads, vec![0]);
    }

    #[test]
    fn guard_skips_body_when_mismatch() {
        // Guard expects Y == 1 but Y is 0: the body write is skipped.
        let trace = run_single(ThreadProg(vec![
            Stmt::TxnGuard {
                guard: Y,
                expect: 1,
                ops: vec![TxOp::Write(X, 5)],
            },
            Stmt::NtRead(X),
        ]));
        let reads: Vec<Val> = trace
            .ops()
            .iter()
            .filter_map(|o| o.op.command().and_then(|c| c.read_val()))
            .collect();
        assert_eq!(reads, vec![0, 0]); // guard read + final nt read
    }

    #[test]
    fn guard_runs_body_when_match() {
        let trace = run_single(ThreadProg(vec![
            Stmt::NtWrite(Y, 1),
            Stmt::TxnGuard {
                guard: Y,
                expect: 1,
                ops: vec![TxOp::Write(X, 5)],
            },
            Stmt::NtRead(X),
        ]));
        let reads: Vec<Val> = trace
            .ops()
            .iter()
            .filter_map(|o| o.op.command().and_then(|c| c.read_val()))
            .collect();
        assert_eq!(reads, vec![1, 5]);
    }

    #[test]
    fn strong_is_sc_opaque_on_fig1_sampled() {
        // The centerpiece: the strong TM forbids the Figure 1 anomaly —
        // opacity parametrized by SC. Exhaustive exploration is
        // intractable here (the record-protocol spin loops multiply the
        // schedule space), so sample widely with uniform + bursty
        // schedules.
        let program = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
        ]);
        let v = check_random(
            &program,
            &StrongTm::new(),
            &ModelEntry::checker_game(&Sc),
            CheckKind::Opacity,
            SweepSeeds::new(0, 600),
            12_000,
        );
        assert!(v.ok, "strong TM violated SC-opacity: {:?}", v.violation);
        assert!(v.runs > 100);
    }

    #[test]
    fn optimized_variant_violates_sc_but_not_alpha() {
        use crate::verify::find_violation;
        use jungle_core::model::Alpha;
        let program = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
        ]);
        // Plain reads can straddle the commit's two data stores: the
        // Figure 5(b) window reappears under SC…
        let bad = find_violation(
            &program,
            &StrongTm::optimized(),
            &ModelEntry::checker_game(&Sc),
            CheckKind::Opacity,
            SweepSeeds::new(0, 2_000),
            8_000,
        );
        assert!(
            bad.is_some(),
            "expected an SC violation for optimized reads"
        );
        // …but under Alpha (reads reorder) every trace is fine.
        let good = check_random(
            &program,
            &StrongTm::optimized(),
            &ModelEntry::checker_game(&Alpha),
            CheckKind::Opacity,
            SweepSeeds::new(0, 300),
            8_000,
        );
        assert!(
            good.ok,
            "optimized strong TM violated Alpha-opacity: {:?}",
            good.violation
        );
    }
}
