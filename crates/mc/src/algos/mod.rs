//! The TM algorithms of §5, as interpreters over simulated hardware.
//!
//! All five algorithms share one skeleton — the global-lock TM of
//! Figure 6 — and differ only in how commits publish writes and how
//! non-transactional writes are implemented, so they are expressed as
//! [`AlgoSpec`] configurations of a single interpreter
//! ([`interp::TmProcess`]):
//!
//! | algorithm | commit update | non-txn write | word layout |
//! |---|---|---|---|
//! | [`GlobalLockTm`] (Fig. 6, Thm 3/7) | `cas` | plain store | raw |
//! | [`WriteTxnTm`] (Thm 4) | `cas` | lock-acquire + store (a one-write transaction) | raw |
//! | [`VersionedTm`] (Thm 5) | `cas` | single store of `(value,pid,version)` | packed |
//! | [`NaiveStoreTm`] (violates Thm 2's necessity) | plain `store` | plain store | raw |
//! | [`SkipWriteTm`] (violates Lemma 1) | *none* | plain store | raw |
//!
//! Fidelity notes versus the paper's Figure 6 pseudocode: the published
//! pseudocode (a) acquires the lock with `cas g, lg, p` where `lg` is a
//! stale read — taken literally this would steal a held lock, so we spin
//! on `cas g, 0, p` with a read back-off, and (b) returns the *readset*
//! value for a read of a variable the transaction has already written —
//! we return the pending write (read-own-writes), which is what opacity
//! requires. Both are noted in DESIGN.md.

mod interp;
mod strong;
mod tl2;

use crate::program::ThreadProg;
use interp::TmProcess;
use jungle_core::ids::ProcId;
use jungle_isa::tm::Instrumentation;
use jungle_memsim::Process;

pub use strong::StrongTm;
pub use tl2::LazyTl2Tm;

/// How a commit publishes each write-set entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommitUpdate {
    /// `⟨cas aₓ, old, new⟩` keyed on the word read earlier (Figure 6).
    Cas,
    /// Plain `⟨store aₓ, new⟩` — deliberately wrong (Theorem 2 shows
    /// CAS is necessary for read-write variables).
    Store,
    /// Publish nothing — deliberately wrong (Lemma 1 shows an update
    /// instruction is necessary).
    Skip,
}

/// How a non-transactional write is implemented.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NtWriteImpl {
    /// Uninstrumented: one plain store.
    Plain,
    /// Theorem 4: acquire the global lock, store, release — a
    /// single-operation transaction (unbounded: the acquisition spins).
    Locked,
    /// Theorem 5: one store of a `(value, pid, version)` packed word;
    /// the process-local version counter costs no instructions.
    VersionedPack,
}

/// Static description of a TM algorithm variant.
#[derive(Clone, Copy, Debug)]
pub struct AlgoSpec {
    /// Display name.
    pub name: &'static str,
    /// Commit publication strategy.
    pub commit: CommitUpdate,
    /// Non-transactional write strategy.
    pub nt_write: NtWriteImpl,
    /// Whether data words use the packed `(value,pid,version)` layout.
    pub packed: bool,
}

/// A TM algorithm: compiles thread programs into reactive processes.
pub trait TmAlgo: Sync {
    /// Display name.
    fn name(&self) -> &'static str;

    /// The instrumentation class of the algorithm's non-transactional
    /// operations (§4).
    fn instrumentation(&self) -> Instrumentation;

    /// Compile one thread of a program into a process for CPU `pid`.
    fn make_process(&self, pid: ProcId, prog: ThreadProg) -> Box<dyn Process>;
}

macro_rules! algo {
    ($(#[$doc:meta])* $name:ident, $spec:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $name;

        impl $name {
            /// The algorithm's static description.
            pub fn spec(&self) -> AlgoSpec {
                $spec
            }
        }

        impl TmAlgo for $name {
            fn name(&self) -> &'static str {
                self.spec().name
            }

            fn instrumentation(&self) -> Instrumentation {
                match self.spec().nt_write {
                    NtWriteImpl::Plain => Instrumentation::Uninstrumented,
                    NtWriteImpl::Locked => Instrumentation::UnboundedWrites,
                    NtWriteImpl::VersionedPack => {
                        Instrumentation::ConstantTimeWrites { bound: 1 }
                    }
                }
            }

            fn make_process(&self, pid: ProcId, prog: ThreadProg) -> Box<dyn Process> {
                Box::new(TmProcess::new(self.spec(), pid, prog))
            }
        }
    };
}

algo!(
    /// The uninstrumented global-lock TM of Figure 6: parametrized
    /// opacity for fully relaxed models (Theorem 3) and SGLA for every
    /// model (Theorem 7).
    GlobalLockTm,
    AlgoSpec {
        name: "global-lock",
        commit: CommitUpdate::Cas,
        nt_write: NtWriteImpl::Plain,
        packed: false,
    }
);

algo!(
    /// Theorem 4's TM: non-transactional writes are one-write
    /// transactions (lock acquire / store / release); reads stay plain
    /// loads. Parametrized opacity for `M ∉ Mrr`.
    WriteTxnTm,
    AlgoSpec {
        name: "write-txn",
        commit: CommitUpdate::Cas,
        nt_write: NtWriteImpl::Locked,
        packed: false,
    }
);

algo!(
    /// Theorem 5's TM: constant-time write instrumentation. Every data
    /// word carries `(value, pid, version)`; a non-transactional write
    /// is a single store of a fresh packed word, and commit-time CAS
    /// detects intervening writes by word inequality. Parametrized
    /// opacity for `M ∉ Mrr ∪ Mwr` (e.g. Alpha).
    VersionedTm,
    AlgoSpec {
        name: "versioned",
        commit: CommitUpdate::Cas,
        nt_write: NtWriteImpl::VersionedPack,
        packed: true,
    }
);

algo!(
    /// Deliberately incorrect: commits publish with plain stores.
    /// Theorem 2 proves a CAS is necessary for variables both read and
    /// written; the model checker finds the violating trace.
    NaiveStoreTm,
    AlgoSpec {
        name: "naive-store",
        commit: CommitUpdate::Store,
        nt_write: NtWriteImpl::Plain,
        packed: false,
    }
);

algo!(
    /// Deliberately incorrect: commits never publish writes at all.
    /// Lemma 1 proves an update instruction is necessary.
    SkipWriteTm,
    AlgoSpec {
        name: "skip-write",
        commit: CommitUpdate::Skip,
        nt_write: NtWriteImpl::Plain,
        packed: false,
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumentation_classes() {
        assert_eq!(
            GlobalLockTm.instrumentation(),
            Instrumentation::Uninstrumented
        );
        assert_eq!(
            WriteTxnTm.instrumentation(),
            Instrumentation::UnboundedWrites
        );
        assert_eq!(
            VersionedTm.instrumentation(),
            Instrumentation::ConstantTimeWrites { bound: 1 }
        );
        assert!(GlobalLockTm.instrumentation().writes_uninstrumented());
        assert!(VersionedTm.instrumentation().reads_uninstrumented());
        assert!(!WriteTxnTm.instrumentation().writes_constant_time());
    }

    #[test]
    fn names() {
        assert_eq!(GlobalLockTm.name(), "global-lock");
        assert_eq!(SkipWriteTm.name(), "skip-write");
    }
}
