//! The transactional-program DSL consumed by the TM interpreters.
//!
//! A [`Program`] is one [`ThreadProg`] per process; each thread is a
//! sequence of statements: transactions (a list of reads/writes followed
//! by commit or abort) and non-transactional accesses. Values are fixed
//! in the program; read results are whatever the execution produces (the
//! recorded trace carries them).

use jungle_core::ids::{Val, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation inside a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxOp {
    /// Transactional read of a variable.
    Read(Var),
    /// Transactional write of a value to a variable.
    Write(Var, Val),
}

/// One statement of a thread program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// A transaction: `start`, the listed operations, then `commit`
    /// (or `abort` when `abort` is true).
    Txn {
        /// The transactional operations, in order.
        ops: Vec<TxOp>,
        /// Whether the transaction aborts instead of committing.
        abort: bool,
    },
    /// A guarded transaction: `start`; transactionally read `guard`;
    /// if it equals `expect`, perform `ops`; commit either way. The
    /// conditional update at the heart of the privatization idiom.
    TxnGuard {
        /// The variable guarding the update.
        guard: Var,
        /// The value that enables the body.
        expect: Val,
        /// Operations performed when the guard matches.
        ops: Vec<TxOp>,
    },
    /// A non-transactional read.
    NtRead(Var),
    /// A non-transactional write.
    NtWrite(Var, Val),
}

impl Stmt {
    /// A committing transaction.
    pub fn txn(ops: Vec<TxOp>) -> Self {
        Stmt::Txn { ops, abort: false }
    }

    /// An aborting transaction.
    pub fn aborting_txn(ops: Vec<TxOp>) -> Self {
        Stmt::Txn { ops, abort: true }
    }
}

/// The statements one process executes, in order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ThreadProg(pub Vec<Stmt>);

/// A whole multiprocess program (index = process id = CPU id).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program(pub Vec<ThreadProg>);

impl Program {
    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.0.len()
    }

    /// The variables mentioned by the program, sorted.
    pub fn vars(&self) -> Vec<Var> {
        let mut vs: Vec<Var> = self
            .0
            .iter()
            .flat_map(|t| t.0.iter())
            .flat_map(|s| match s {
                Stmt::Txn { ops, .. } => ops
                    .iter()
                    .map(|o| match o {
                        TxOp::Read(v) | TxOp::Write(v, _) => *v,
                    })
                    .collect::<Vec<_>>(),
                Stmt::TxnGuard { guard, ops, .. } => {
                    let mut vs: Vec<Var> = ops
                        .iter()
                        .map(|o| match o {
                            TxOp::Read(v) | TxOp::Write(v, _) => *v,
                        })
                        .collect();
                    vs.push(*guard);
                    vs
                }
                Stmt::NtRead(v) | Stmt::NtWrite(v, _) => vec![*v],
            })
            .collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// Total number of operations (transactional boundaries included).
    pub fn n_ops(&self) -> usize {
        self.0
            .iter()
            .flat_map(|t| t.0.iter())
            .map(|s| match s {
                Stmt::Txn { ops, .. } => ops.len() + 2,
                Stmt::TxnGuard { ops, .. } => ops.len() + 3,
                _ => 1,
            })
            .sum()
    }
}

/// Configuration for random program generation (used by the positive
/// theorem sweeps and fuzz tests).
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of threads.
    pub threads: usize,
    /// Number of distinct variables.
    pub vars: u32,
    /// Maximum statements per thread.
    pub max_stmts: usize,
    /// Maximum operations per transaction.
    pub max_txn_ops: usize,
    /// Probability (0–100) that a statement is a transaction.
    pub txn_pct: u32,
    /// Probability (0–100) that a transaction aborts.
    pub abort_pct: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            threads: 2,
            vars: 2,
            max_stmts: 2,
            max_txn_ops: 2,
            txn_pct: 50,
            abort_pct: 15,
        }
    }
}

/// Generate a random program. Written values are distinct per
/// (thread, position) so that histories are unambiguous.
pub fn generate(cfg: &GenConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fresh = 1u64;
    let mut threads = Vec::with_capacity(cfg.threads);
    for _ in 0..cfg.threads {
        let n = rng.gen_range(1..=cfg.max_stmts);
        let mut stmts = Vec::with_capacity(n);
        for _ in 0..n {
            if rng.gen_range(0..100) < cfg.txn_pct {
                let k = rng.gen_range(1..=cfg.max_txn_ops);
                let ops = (0..k)
                    .map(|_| {
                        let v = Var(rng.gen_range(0..cfg.vars));
                        if rng.gen_bool(0.5) {
                            TxOp::Read(v)
                        } else {
                            fresh += 1;
                            TxOp::Write(v, fresh)
                        }
                    })
                    .collect();
                let abort = rng.gen_range(0..100) < cfg.abort_pct;
                stmts.push(Stmt::Txn { ops, abort });
            } else {
                let v = Var(rng.gen_range(0..cfg.vars));
                if rng.gen_bool(0.5) {
                    stmts.push(Stmt::NtRead(v));
                } else {
                    fresh += 1;
                    stmts.push(Stmt::NtWrite(v, fresh));
                }
            }
        }
        threads.push(ThreadProg(stmts));
    }
    Program(threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungle_core::ids::{X, Y};

    #[test]
    fn program_metadata() {
        let p = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Read(Y)])]),
            ThreadProg(vec![Stmt::NtRead(X), Stmt::NtWrite(Y, 2)]),
        ]);
        assert_eq!(p.n_threads(), 2);
        assert_eq!(p.vars(), vec![X, Y]);
        assert_eq!(p.n_ops(), 4 + 2);
    }

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let cfg = GenConfig::default();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a, b);
        assert_eq!(a.n_threads(), 2);
        for t in &a.0 {
            assert!(t.0.len() <= cfg.max_stmts && !t.0.is_empty());
            for s in &t.0 {
                if let Stmt::Txn { ops, .. } = s {
                    assert!(ops.len() <= cfg.max_txn_ops && !ops.is_empty());
                }
            }
        }
    }

    #[test]
    fn distinct_seeds_vary() {
        let cfg = GenConfig {
            max_stmts: 3,
            ..GenConfig::default()
        };
        let differs = (0..20).any(|s| generate(&cfg, s) != generate(&cfg, s + 100));
        assert!(differs);
    }

    #[test]
    fn written_values_are_distinct() {
        let cfg = GenConfig {
            max_stmts: 4,
            max_txn_ops: 3,
            ..GenConfig::default()
        };
        let p = generate(&cfg, 3);
        let mut vals = Vec::new();
        for t in &p.0 {
            for s in &t.0 {
                match s {
                    Stmt::Txn { ops, .. } => {
                        for o in ops {
                            if let TxOp::Write(_, v) = o {
                                vals.push(*v);
                            }
                        }
                    }
                    Stmt::NtWrite(_, v) => vals.push(*v),
                    _ => {}
                }
            }
        }
        let mut dedup = vals.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), vals.len());
    }
}
