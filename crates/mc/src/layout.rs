//! Address layout and word packing shared by the TM interpreters.
//!
//! Each program variable `Var(v)` owns the data address `v`; the global
//! lock `g` of the Figure 6 algorithm lives at a reserved high address.
//! The Theorem 5 (versioned) TM packs `(value, pid, version)` into the
//! single data word so that a non-transactional write is one plain
//! store — the constant-time instrumentation of the theorem.

use jungle_core::ids::{ProcId, Val, Var};
use jungle_isa::instr::Addr;

/// Address of the global lock `g` (Figure 6).
pub const GLOBAL_LOCK: Addr = 0xFFFF_0000;

/// Base address of per-variable metadata words (transactional records
/// of the strong TM, version locks of the lazy TL2 TM).
pub const META_BASE: Addr = 0x4000_0000;

/// The metadata address of a variable.
pub fn meta_of(v: Var) -> Addr {
    META_BASE + v.0
}

/// The data address of a variable.
pub fn addr_of(v: Var) -> Addr {
    v.0
}

/// The variable stored at a data address (inverse of [`addr_of`]).
pub fn var_of(a: Addr) -> Var {
    Var(a)
}

/// Lock word value meaning "free".
pub const LOCK_FREE: Val = 0;

/// Lock word value for a holder process (`p+1`, so process 0 is
/// distinguishable from the free state).
pub fn lock_owner(p: ProcId) -> Val {
    u64::from(p.0) + 1
}

/// Packed word layout of the versioned (Theorem 5) TM:
/// `value:32 | pid:8 | version:24`.
pub mod packed {
    use super::*;

    /// Maximum storable value (32 bits).
    pub const MAX_VALUE: Val = u32::MAX as Val;

    /// Pack `(value, pid, version)` into one word.
    pub fn pack(value: Val, pid: ProcId, version: u32) -> Val {
        debug_assert!(value <= MAX_VALUE, "versioned TM stores 32-bit values");
        debug_assert!(pid.0 < 256, "versioned TM supports 256 processes");
        (value << 32) | (u64::from(pid.0 & 0xFF) << 24) | u64::from(version & 0x00FF_FFFF)
    }

    /// The value stored in a packed word.
    pub fn value(word: Val) -> Val {
        word >> 32
    }

    /// The writer process recorded in a packed word.
    pub fn pid(word: Val) -> ProcId {
        ProcId(((word >> 24) & 0xFF) as u32)
    }

    /// The writer-local version recorded in a packed word.
    pub fn version(word: Val) -> u32 {
        (word & 0x00FF_FFFF) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_roundtrip() {
        for v in [0u32, 1, 17, 4096] {
            assert_eq!(var_of(addr_of(Var(v))), Var(v));
        }
        const { assert!(GLOBAL_LOCK > 1_000_000) };
    }

    #[test]
    fn lock_owner_nonzero() {
        assert_ne!(lock_owner(ProcId(0)), LOCK_FREE);
        assert_eq!(lock_owner(ProcId(3)), 4);
    }

    #[test]
    fn packing_roundtrips() {
        use packed::*;
        for (v, p, ver) in [
            (0u64, 0u32, 0u32),
            (42, 3, 7),
            (u32::MAX as u64, 255, 0xFF_FFFF),
        ] {
            let w = pack(v, ProcId(p), ver);
            assert_eq!(value(w), v);
            assert_eq!(pid(w), ProcId(p));
            assert_eq!(version(w), ver);
        }
    }

    #[test]
    fn distinct_writes_produce_distinct_words() {
        use packed::*;
        // Same value written by different processes or versions must
        // differ (this is what defeats ABA for the commit-time CAS).
        let a = pack(5, ProcId(1), 1);
        let b = pack(5, ProcId(2), 1);
        let c = pack(5, ProcId(1), 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
