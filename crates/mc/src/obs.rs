//! Deriving TM runtime counters from model-checker traces.
//!
//! The interpreted TM algorithms run inside the simulator, so their
//! runtime behaviour is fully visible in the recorded traces: commit
//! and abort responses, CAS outcomes, global-lock traffic (by
//! address), and the instruction footprint of every operation. This
//! module folds a trace into the same [`TmSnapshot`] shape the real
//! STMs report, so `jungle-bench` can put interpreted and native
//! executions side by side.

use crate::layout::{GLOBAL_LOCK, LOCK_FREE};
use jungle_core::ids::{OpId, ProcId};
use jungle_core::op::{Command, Op};
use jungle_isa::instr::Instr;
use jungle_isa::trace::Trace;
use jungle_obs::TmSnapshot;
use std::collections::HashMap;

/// Classify every instruction and operation of `trace` into TM runtime
/// counters.
///
/// Conventions:
///
/// * `commits`/`aborts` count completed `commit`/`abort` operations.
/// * `cas_failures` counts every CAS that returned false.
/// * `lock_acquisitions` counts successful CASes that moved the global
///   lock away from [`LOCK_FREE`]; `lock_spins` counts reads of the
///   lock word and failed CASes on it.
/// * A non-transactional command is **uninstrumented** when it executed
///   at most one memory instruction (the bare access), and
///   **instrumented** otherwise — the paper's Table 1 distinction,
///   recovered from the trace.
pub fn tm_counts_from_trace(trace: &Trace) -> TmSnapshot {
    let mut snap = TmSnapshot::default();

    // Memory-instruction footprint of each operation.
    let mut footprint: HashMap<(ProcId, OpId), u64> = HashMap::new();
    for ii in trace.instrs() {
        match ii.instr {
            Instr::Load { addr, .. } => {
                *footprint.entry((ii.proc, ii.op)).or_insert(0) += 1;
                if addr == GLOBAL_LOCK {
                    snap.lock_spins += 1;
                }
            }
            Instr::Store { .. } => {
                *footprint.entry((ii.proc, ii.op)).or_insert(0) += 1;
            }
            Instr::Cas { addr, new, ok, .. } => {
                *footprint.entry((ii.proc, ii.op)).or_insert(0) += 1;
                if !ok {
                    snap.cas_failures += 1;
                }
                if addr == GLOBAL_LOCK {
                    if ok && new != LOCK_FREE {
                        snap.lock_acquisitions += 1;
                    } else if !ok {
                        snap.lock_spins += 1;
                    }
                }
            }
            Instr::Inv(_) | Instr::Resp(_) => {}
        }
    }

    // Operation-level classification, tracking per-process txn state.
    let mut in_txn: HashMap<ProcId, bool> = HashMap::new();
    for top in trace.ops() {
        let inside = in_txn.entry(top.proc).or_insert(false);
        match &top.op {
            Op::Start => *inside = true,
            Op::Commit => {
                if top.complete {
                    snap.commits += 1;
                }
                *inside = false;
            }
            Op::Abort => {
                if top.complete {
                    snap.aborts += 1;
                }
                *inside = false;
            }
            Op::Cmd(cmd) => {
                let is_write = matches!(
                    cmd,
                    Command::Write { .. } | Command::DepWrite { .. } | Command::FetchAdd { .. }
                );
                if *inside {
                    if is_write {
                        snap.txn_writes += 1;
                    } else {
                        snap.txn_reads += 1;
                    }
                } else {
                    let n = footprint.get(&(top.proc, top.id)).copied().unwrap_or(0);
                    if n > 1 {
                        snap.nontxn_instrumented += 1;
                    } else {
                        snap.nontxn_uninstrumented += 1;
                    }
                }
            }
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::lock_owner;
    use jungle_core::ids::X;
    use jungle_isa::trace::TraceBuilder;

    fn rd(val: u64) -> Op {
        Op::Cmd(Command::Read { var: X, val })
    }

    fn wr(val: u64) -> Op {
        Op::Cmd(Command::Write { var: X, val })
    }

    #[test]
    fn classifies_txn_and_nontxn_ops() {
        let p = ProcId(0);
        let mut b = TraceBuilder::new();
        // Txn: start (acquire lock), write in place, commit (release).
        b.complete_op(
            p,
            Op::Start,
            vec![
                Instr::Cas {
                    addr: GLOBAL_LOCK,
                    expect: LOCK_FREE,
                    new: lock_owner(p),
                    ok: false,
                },
                Instr::Load {
                    addr: GLOBAL_LOCK,
                    val: lock_owner(ProcId(1)),
                },
                Instr::Cas {
                    addr: GLOBAL_LOCK,
                    expect: LOCK_FREE,
                    new: lock_owner(p),
                    ok: true,
                },
            ],
        );
        b.complete_op(p, wr(5), vec![Instr::Store { addr: 0, val: 5 }]);
        b.complete_op(
            p,
            Op::Commit,
            vec![Instr::Store {
                addr: GLOBAL_LOCK,
                val: LOCK_FREE,
            }],
        );
        // Uninstrumented non-txn read (single bare load).
        b.complete_op(p, rd(5), vec![Instr::Load { addr: 0, val: 5 }]);
        // Instrumented non-txn read (lock check + load).
        b.complete_op(
            p,
            rd(5),
            vec![
                Instr::Load {
                    addr: GLOBAL_LOCK,
                    val: LOCK_FREE,
                },
                Instr::Load { addr: 0, val: 5 },
            ],
        );
        let snap = tm_counts_from_trace(&b.build().unwrap());
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.aborts, 0);
        assert_eq!(snap.cas_failures, 1);
        assert_eq!(snap.lock_acquisitions, 1);
        assert_eq!(snap.lock_spins, 3); // failed CAS + 2 lock-word loads
        assert_eq!(snap.txn_writes, 1);
        assert_eq!(snap.txn_reads, 0);
        assert_eq!(snap.nontxn_uninstrumented, 1);
        assert_eq!(snap.nontxn_instrumented, 1);
    }

    #[test]
    fn abort_counted() {
        let p = ProcId(0);
        let mut b = TraceBuilder::new();
        b.complete_op(p, Op::Start, vec![]);
        b.complete_op(p, rd(0), vec![Instr::Load { addr: 0, val: 0 }]);
        b.complete_op(p, Op::Abort, vec![]);
        let snap = tm_counts_from_trace(&b.build().unwrap());
        assert_eq!(snap.aborts, 1);
        assert_eq!(snap.commits, 0);
        assert_eq!(snap.txn_reads, 1);
    }
}
