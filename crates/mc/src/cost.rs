//! Static instrumentation-cost measurement (§4/§5, quantified).
//!
//! Runs a standard mixed workload program through each TM algorithm on
//! the simulator and reports the *instruction* cost of every operation
//! class from the recorded trace — the deterministic counterpart of the
//! wall-clock benches in `jungle-bench`. The theorems pin several cells
//! of this table exactly:
//!
//! * uninstrumented non-transactional reads and writes are **1**
//!   instruction (global-lock, versioned reads, lazy-TL2);
//! * Theorem 5's write instrumentation is **exactly 1** store;
//! * Theorem 4's write instrumentation is ≥ 3 (CAS + store + unlock)
//!   and unbounded under contention;
//! * the strong TM's non-transactional accesses cost ≥ 2 (record check
//!   + data access), its writes ≥ 4 (acquire, store, release).

use crate::algos::TmAlgo;
use crate::program::{Program, Stmt, ThreadProg, TxOp};
use jungle_core::ids::{ProcId, Var};
use jungle_isa::trace::CostStats;
use jungle_memsim::{HwModel, Machine, RandomScheduler};

/// A standard single-threaded workload touching every operation class.
pub fn standard_program() -> ThreadProg {
    let x = Var(0);
    let y = Var(1);
    ThreadProg(vec![
        Stmt::NtWrite(x, 1),
        Stmt::NtRead(x),
        Stmt::txn(vec![TxOp::Read(x), TxOp::Write(y, 2), TxOp::Read(y)]),
        Stmt::NtRead(y),
        Stmt::NtWrite(y, 3),
        Stmt::aborting_txn(vec![TxOp::Write(x, 9)]),
        Stmt::NtRead(x),
    ])
}

/// Execute the standard program single-threaded (no contention: the
/// measured costs are the algorithms' *base* instrumentation) and
/// return the per-class instruction costs.
pub fn measure(algo: &dyn TmAlgo) -> CostStats {
    let program = Program(vec![standard_program()]);
    let m = Machine::new(
        HwModel::Sc,
        vec![algo.make_process(ProcId(0), program.0[0].clone())],
    );
    let mut sched = RandomScheduler::new(7);
    let r = m.run(&mut sched, 100_000);
    assert!(
        r.completed,
        "{}: standard program did not complete",
        algo.name()
    );
    r.trace.cost_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::{GlobalLockTm, LazyTl2Tm, StrongTm, VersionedTm, WriteTxnTm};

    #[test]
    fn uninstrumented_ops_cost_exactly_one() {
        for algo in [&GlobalLockTm as &dyn TmAlgo, &LazyTl2Tm] {
            let c = measure(algo);
            assert_eq!(c.nt_read.max_instrs, 1, "{} read", algo.name());
            assert_eq!(c.nt_write.max_instrs, 1, "{} write", algo.name());
        }
    }

    #[test]
    fn theorem5_write_is_exactly_one_store() {
        let c = measure(&VersionedTm);
        assert_eq!(c.nt_read.max_instrs, 1);
        assert_eq!(c.nt_write.max_instrs, 1); // the theorem's headline
        assert!(c.nt_write.count >= 2);
    }

    #[test]
    fn theorem4_write_is_a_lock_round_trip() {
        let c = measure(&WriteTxnTm);
        assert_eq!(c.nt_read.max_instrs, 1); // reads stay plain
        assert!(
            c.nt_write.max_instrs >= 3,
            "lock write should cost ≥3 instructions, got {}",
            c.nt_write.max_instrs
        );
    }

    #[test]
    fn strong_instruments_both_sides() {
        let c = measure(&StrongTm::new());
        assert!(c.nt_read.max_instrs >= 2, "record check + load");
        assert!(c.nt_write.max_instrs >= 4, "acquire + store + release");
        // The optimized variant de-instruments exactly the reads.
        let o = measure(&StrongTm::optimized());
        assert_eq!(o.nt_read.max_instrs, 1);
        assert!(o.nt_write.max_instrs >= 4);
    }

    #[test]
    fn transactional_costs_observed() {
        let c = measure(&GlobalLockTm);
        // Fig. 6: start = lock CAS; commit = per-write CAS + unlock.
        assert!(c.start.max_instrs >= 1);
        assert!(c.commit.max_instrs >= 2);
        assert!(c.txn_read.count >= 2 && c.txn_write.count >= 1);
    }
}
