//! Verification driver: programs × algorithms × schedules → verdicts.
//!
//! The paper defines: a TM implementation `I` *guarantees opacity
//! parametrized by `M`* iff for every trace `r ∈ L(I)` **there exists**
//! a corresponding history that ensures opacity parametrized by `M`
//! (and analogously for SGLA). [`trace_satisfies`] decides the inner
//! existential (trying the cheap canonical correspondence first);
//! [`check_all_traces`] discharges the outer universal by exhaustive
//! schedule exploration (small programs), and [`check_random`] /
//! [`find_violation`] sample it with seeded-random schedules.
//!
//! Every sweep takes a [`ModelEntry`] — the unified handle from the
//! model registry bundling the checker-side `MemoryModel` with the
//! execution-side `ExecSemantics` the simulated machine runs under —
//! instead of separate hardware/model arguments, so the two facades can
//! never drift apart at a call site.
//!
//! ### Redundancy elimination
//!
//! Exhaustive store-buffer scheduling produces many instruction-level
//! interleavings that collapse to the *same* operations with the same
//! overlap structure — and the inner existential depends on nothing
//! else. The sweeps therefore deduplicate completed traces by
//! [`Trace::cache_key`] (skips counted as `McStats::dedup_hits`) and
//! memoize per-history checker verdicts in a [`SharedVerdictMemo`]
//! keyed by `(model key, CheckKind, History::cache_key)` (hits counted
//! as `McStats::memo_hits`). Because the key carries the model and the
//! property, one memo can safely be **shared across sweeps** — the
//! `_shared` sweep variants accept a caller-owned memo so a report run
//! spanning many experiments reuses verdicts; the plain variants create
//! a private one per sweep. History fingerprints are 64-bit structural
//! hashes; a collision between distinct structures is possible in
//! principle but vanishingly unlikely.
//!
//! ### Partial-order reduction
//!
//! The exhaustive sweeps do not enumerate raw schedules at all: they
//! run the sleep-set DPOR explorer ([`crate::dpor`]), which executes
//! one machine run per Mazurkiewicz equivalence class of decisions —
//! orders of magnitude fewer runs than enumeration on store-buffer
//! machines, with bit-identical verdicts and witnesses (the serial
//! explorer meets leaves in the same lexicographic order enumeration
//! does). The pre-reduction algorithm survives as
//! [`check_all_traces_enumerative`], the oracle the reduction is
//! tested against: [`class_sweep_dpor`] must produce exactly the
//! class-key set of [`class_sweep_enumerative`].
//!
//! ### Parallel sweeps
//!
//! [`check_all_traces_par`] runs the DPOR exploration itself on a
//! work-stealing frontier of donated subtrees
//! ([`crate::dpor::Frontier`]), checking each completed trace inline in
//! the worker that executed it (all of them share the dedup set and
//! verdict memo). The reported violation is the one with the
//! lexicographically least decision path — the leaf the serial DFS
//! stops at — so the verdict *and* the violating trace match the
//! serial path for every thread count. Exploration counters (`runs`,
//! `schedules`, `dedup_hits`) can exceed the serial early-stop values,
//! since workers prune against the best violation found *so far* and
//! may finish runs beyond the eventual winner.
//!
//! [`check_random_par`] stripes the seed range over the workers. The
//! `ok` verdict is deterministic (dedup only ever skips a trace whose
//! structural twin gets the same verdict), and the reported violation
//! comes from the lowest violating seed: a worker never skips a seed
//! smaller than the best violation found so far, only larger ones.
//! As with the exhaustive pool, per-run counters (`runs`, `dedup_hits`,
//! `memo_hits`) may differ from the serial sweep, which stops at the
//! first violating seed.

use crate::algos::TmAlgo;
use crate::dpor::{explore_dpor, explore_dpor_par, DporOutcome};
use crate::obs::tm_counts_from_trace;
use crate::program::Program;
use jungle_core::encode::{check_opacity_sat, check_sgla_sat, CheckBackend};
use jungle_core::ids::ProcId;
use jungle_core::model::MemoryModel;
use jungle_core::opacity::check_opacity;
use jungle_core::par::ParallelConfig;
use jungle_core::registry::ModelEntry;
use jungle_core::sgla::check_sgla;
use jungle_isa::trace::Trace;
use jungle_memsim::{explore, BurstyScheduler, HwModel, Machine, RandomScheduler, Scheduler};
use jungle_obs::trace::{self as flight, EventKind};
use jungle_obs::{DporStats, McStats, TmSnapshot};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which correctness property to check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CheckKind {
    /// Parametrized opacity (§3.3).
    Opacity,
    /// Single global lock atomicity (§6.2).
    Sgla,
}

impl CheckKind {
    /// Stable on-disk tag, used in persisted memo file names.
    pub fn tag(self) -> &'static str {
        match self {
            CheckKind::Opacity => "opacity",
            CheckKind::Sgla => "sgla",
        }
    }

    /// Inverse of [`CheckKind::tag`].
    pub fn from_tag(tag: &str) -> Option<CheckKind> {
        match tag {
            "opacity" => Some(CheckKind::Opacity),
            "sgla" => Some(CheckKind::Sgla),
            _ => None,
        }
    }
}

/// The seed range of a randomized sweep, with an **explicit** base so
/// two sweeps over the same program are reproducibly identical iff
/// their `(base, runs)` pairs are — there is no hidden default seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepSeeds {
    /// First seed used.
    pub base: u64,
    /// Number of consecutive seeds (`base, base+1, …, base+runs-1`).
    pub runs: u64,
}

impl SweepSeeds {
    /// The sweep over seeds `base, base+1, …, base+runs-1`.
    pub fn new(base: u64, runs: u64) -> Self {
        SweepSeeds { base, runs }
    }

    /// The seeds, in order.
    pub fn iter(self) -> impl Iterator<Item = u64> {
        self.base..self.base.saturating_add(self.runs)
    }
}

/// Outcome of a multi-trace verification.
#[derive(Debug)]
pub struct Verdict {
    /// True if every checked trace had a satisfying corresponding
    /// history. Deterministic: independent of thread count and, for
    /// randomized sweeps, fully determined by the explicit
    /// [`SweepSeeds`].
    pub ok: bool,
    /// A violating trace, if one was found — the first violating trace
    /// in exploration (or seed) order, even for parallel sweeps.
    pub violation: Option<Trace>,
    /// Number of runs examined. For a parallel sweep this may exceed
    /// the serial early-stop count (see module docs); it is zero for a
    /// vacuously passing verdict.
    pub runs: usize,
    /// Runs that hit the step bound before completing. Completed-trace
    /// checking never includes these; like `runs`, zero when nothing
    /// was explored.
    pub truncated: usize,
    /// Exploration counters: checked model key, schedules, histories
    /// checked, dedup/memo hits, worker threads, and the aggregated
    /// simulated-machine statistics.
    pub stats: McStats,
    /// TM runtime counters aggregated over every completed trace
    /// (including deduplicated ones — dedup skips the *checking*, not
    /// the accounting).
    pub tm: TmSnapshot,
    /// DPOR waste attribution (empty for enumerative and randomized
    /// sweeps). `waste.blocked` equals `stats.dpor_blocked`.
    pub waste: DporStats,
}

impl Verdict {
    fn passing(entry: &ModelEntry) -> Self {
        Verdict {
            ok: true,
            violation: None,
            runs: 0,
            truncated: 0,
            stats: McStats {
                model: entry.key,
                ..McStats::default()
            },
            tm: TmSnapshot::default(),
            waste: DporStats::default(),
        }
    }

    /// Completed traces skipped because a structurally identical trace
    /// was already checked in this sweep.
    pub fn dedup_hits(&self) -> u64 {
        self.stats.dedup_hits
    }

    /// Checker worker threads used (0 = serial sweep).
    pub fn workers(&self) -> u64 {
        self.stats.workers
    }
}

/// One memoized verdict with its provenance (computed this run vs
/// preloaded from a previous run's persisted memo).
#[derive(Clone, Copy)]
struct MemoVerdict {
    ok: bool,
    from_disk: bool,
}

/// Bounded memo of per-history checker verdicts, keyed by
/// `(model key, CheckKind, History::cache_key)`.
///
/// Because the model and the property are part of the key, a single
/// memo is safe to share across sweeps with different parameters — the
/// `_shared` sweep variants take one by reference, and a report run
/// covering many experiments pays for each distinct (model, property,
/// history) search only once. Stops admitting entries when full rather
/// than evicting. [`SharedVerdictMemo::hits`] /
/// [`SharedVerdictMemo::lookups`] expose lifetime counters for the
/// report's memo-efficiency metrics.
///
/// The memo also **persists across runs**: [`SharedVerdictMemo::save_dir`]
/// writes one file per `(model, property)` under a directory (the
/// report uses `.jungle/memo/`), and [`SharedVerdictMemo::load_dir`]
/// preloads them on start. Preloaded entries are tracked separately —
/// [`SharedVerdictMemo::cross_run_hits`] counts lookups answered by a
/// *previous* run's search, so the report can surface cross-run vs
/// in-run reuse as distinct rates. Persistence is sound for the same
/// reason sharing is: the key carries the model and the property, and
/// the checker verdict for a history fingerprint is a pure function of
/// both.
pub struct SharedVerdictMemo {
    cap: usize,
    map: Mutex<HashMap<(&'static str, CheckKind, u64), MemoVerdict>>,
    hits: AtomicU64,
    lookups: AtomicU64,
    cross_hits: AtomicU64,
    preloaded: AtomicU64,
}

impl SharedVerdictMemo {
    /// Default entry budget: enough for every distinct history that
    /// litmus-scale sweeps produce, with a hard memory ceiling.
    pub const DEFAULT_CAP: usize = 1 << 16;

    /// A memo with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }

    /// A memo admitting at most `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        SharedVerdictMemo {
            cap,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            cross_hits: AtomicU64::new(0),
            preloaded: AtomicU64::new(0),
        }
    }

    /// Lifetime count of lookups answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime count of lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Hits answered by an entry preloaded from a previous run (a
    /// subset of [`SharedVerdictMemo::hits`]).
    pub fn cross_run_hits(&self) -> u64 {
        self.cross_hits.load(Ordering::Relaxed)
    }

    /// Entries preloaded from disk by [`SharedVerdictMemo::load_dir`].
    pub fn preloaded_entries(&self) -> u64 {
        self.preloaded.load(Ordering::Relaxed)
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when no verdict has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a memoized verdict for `(model, kind, fingerprint)`.
    /// Public entry point for external consumers (e.g. the streaming
    /// monitor's escalation path); counts as a lookup and, on success,
    /// a hit.
    pub fn lookup(&self, model: &'static str, kind: CheckKind, fingerprint: u64) -> Option<bool> {
        self.get((model, kind, fingerprint))
    }

    /// Record a freshly computed verdict for `(model, kind,
    /// fingerprint)`. Sound for any caller because the verdict for a
    /// history fingerprint is a pure function of the key.
    pub fn record(&self, model: &'static str, kind: CheckKind, fingerprint: u64, verdict: bool) {
        self.put((model, kind, fingerprint), verdict);
    }

    fn get(&self, key: (&'static str, CheckKind, u64)) -> Option<bool> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let v = self.map.lock().unwrap().get(&key).copied();
        if let Some(e) = v {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if e.from_disk {
                self.cross_hits.fetch_add(1, Ordering::Relaxed);
            }
            flight::emit(EventKind::McMemoHit, key.2, u64::from(e.from_disk));
            return Some(e.ok);
        }
        None
    }

    fn put(&self, key: (&'static str, CheckKind, u64), verdict: bool) {
        self.insert(
            key,
            MemoVerdict {
                ok: verdict,
                from_disk: false,
            },
        );
    }

    fn insert(&self, key: (&'static str, CheckKind, u64), v: MemoVerdict) {
        let mut m = self.map.lock().unwrap();
        if m.len() < self.cap {
            m.insert(key, v);
        }
    }

    /// Preload one verdict from a previous run. The model key must be
    /// `'static` (callers resolve names through the
    /// [registry](jungle_core::registry::registry)).
    pub fn preload(&self, model: &'static str, kind: CheckKind, fingerprint: u64, verdict: bool) {
        self.insert(
            (model, kind, fingerprint),
            MemoVerdict {
                ok: verdict,
                from_disk: true,
            },
        );
        self.preloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Persist every memoized verdict under `dir`, one
    /// `<model>.<property>.memo` file per `(model, property)` pair with
    /// `fingerprint verdict` lines. Returns the number of entries
    /// written. Files are rewritten whole, so stale verdicts never
    /// accumulate.
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let map = self.map.lock().unwrap();
        let mut by_file: HashMap<(&'static str, CheckKind), Vec<(u64, bool)>> = HashMap::new();
        for (&(model, kind, fp), v) in map.iter() {
            by_file.entry((model, kind)).or_default().push((fp, v.ok));
        }
        let mut written = 0;
        for ((model, kind), mut entries) in by_file {
            entries.sort_unstable();
            let path = dir.join(format!("{model}.{}.memo", kind.tag()));
            let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
            for (fp, ok) in entries {
                writeln!(f, "{fp} {}", u64::from(ok))?;
                written += 1;
            }
        }
        Ok(written)
    }

    /// Preload every persisted verdict found under `dir` (files written
    /// by [`SharedVerdictMemo::save_dir`]). Model names are resolved
    /// through the canonical registry; files for unknown models or
    /// properties are skipped, as are unparseable lines. Returns the
    /// number of entries loaded. A missing directory is not an error.
    pub fn load_dir(&self, dir: &Path) -> std::io::Result<usize> {
        let rd = match std::fs::read_dir(dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut loaded = 0;
        for entry in rd {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(stem) = name.strip_suffix(".memo") else {
                continue;
            };
            let Some((model_name, kind_tag)) = stem.rsplit_once('.') else {
                continue;
            };
            let Some(kind) = CheckKind::from_tag(kind_tag) else {
                continue;
            };
            // Resolve the on-disk name to the registry's 'static key.
            let Some(model) = jungle_core::registry::entry(model_name).map(|e| e.key) else {
                continue;
            };
            let text = std::fs::read_to_string(&path)?;
            for line in text.lines() {
                let mut it = line.split_ascii_whitespace();
                let (Some(fp), Some(v)) = (it.next(), it.next()) else {
                    continue;
                };
                let (Ok(fp), Ok(v)) = (fp.parse::<u64>(), v.parse::<u64>()) else {
                    continue;
                };
                self.preload(model, kind, fp, v != 0);
                loaded += 1;
            }
        }
        Ok(loaded)
    }
}

impl Default for SharedVerdictMemo {
    fn default() -> Self {
        Self::new()
    }
}

/// One history's verdict under the selected decision procedure. Both
/// backends are exact and certified (the SAT backend validates every
/// positive model against the DFS leaf), so the verdict is
/// backend-independent — which is what lets the memo stay unkeyed by
/// backend.
fn history_passes(
    h: &jungle_core::history::History,
    model: &dyn MemoryModel,
    kind: CheckKind,
    backend: CheckBackend,
) -> bool {
    match (kind, backend) {
        (CheckKind::Opacity, CheckBackend::Dfs) => check_opacity(h, model).is_opaque(),
        (CheckKind::Opacity, CheckBackend::Sat) => check_opacity_sat(h, model).is_opaque(),
        (CheckKind::Sgla, CheckBackend::Dfs) => check_sgla(h, model).is_sgla(),
        (CheckKind::Sgla, CheckBackend::Sat) => check_sgla_sat(h, model).is_sgla(),
    }
}

/// Does some history corresponding to `trace` satisfy the property
/// under `model`?
pub fn trace_satisfies(trace: &Trace, model: &dyn MemoryModel, kind: CheckKind) -> bool {
    trace_satisfies_memo(trace, model, kind, CheckBackend::Dfs, None).0
}

/// [`trace_satisfies`] deciding each history with `backend`.
pub fn trace_satisfies_backend(
    trace: &Trace,
    model: &dyn MemoryModel,
    kind: CheckKind,
    backend: CheckBackend,
) -> bool {
    trace_satisfies_memo(trace, model, kind, backend, None).0
}

/// [`trace_satisfies`] with an optional verdict memo binding (the memo
/// plus the model key to scope entries under); returns the verdict and
/// the number of memo hits.
fn trace_satisfies_memo(
    trace: &Trace,
    model: &dyn MemoryModel,
    kind: CheckKind,
    backend: CheckBackend,
    memo: Option<(&SharedVerdictMemo, &'static str)>,
) -> (bool, u64) {
    let mut memo_hits = 0u64;
    let mut pass = |h: &jungle_core::history::History| {
        let key = memo.map(|(_, mk)| (mk, kind, h.cache_key()));
        if let (Some((m, _)), Some(k)) = (memo, key) {
            if let Some(v) = m.get(k) {
                memo_hits += 1;
                return v;
            }
        }
        let v = history_passes(h, model, kind, backend);
        if let (Some((m, _)), Some(k)) = (memo, key) {
            m.put(k, v);
        }
        v
    };
    // Fast path: the canonical linearize-at-response history.
    let canonical = trace.canonical_history().ok();
    if let Some(h) = &canonical {
        if pass(h) {
            return (true, memo_hits);
        }
    }
    // The canonical history failed (or was ill-formed); enumerate the
    // rest, skipping the canonical order so it is not checked twice.
    let canon_ids: Option<Vec<jungle_core::ids::OpId>> =
        canonical.map(|h| h.ops().iter().map(|o| o.id).collect());
    let found = trace.exists_corresponding(|h| {
        if let Some(ids) = &canon_ids {
            if h.ops().iter().map(|o| o.id).eq(ids.iter().copied()) {
                return false; // already rejected above
            }
        }
        pass(h)
    });
    (found.is_some(), memo_hits)
}

fn build_machine(program: &Program, algo: &dyn TmAlgo, hw: HwModel) -> Machine {
    let procs = program
        .0
        .iter()
        .enumerate()
        .map(|(i, t)| algo.make_process(ProcId(i as u32), t.clone()))
        .collect();
    Machine::new(hw, procs)
}

/// Build the simulated machine for `program` under `algo` on `hw` —
/// the exact construction every sweep in this module uses. Public so
/// the record/replay engine (`jungle-replay`) re-executes schedule logs
/// on machines identical to the ones that produced them.
pub fn machine_for(program: &Program, algo: &dyn TmAlgo, hw: HwModel) -> Machine {
    build_machine(program, algo, hw)
}

/// The scheduler the randomized sweeps use for `seed`: even seeds get a
/// uniform [`RandomScheduler`], odd seeds a [`BurstyScheduler`] (bursts
/// hit the paper's tight Figure 5 windows). Public so a recording run
/// can reconstruct the exact sweep schedule for any seed.
pub fn scheduler_for_seed(seed: u64) -> Box<dyn Scheduler> {
    if seed.is_multiple_of(2) {
        Box::new(RandomScheduler::new(seed))
    } else {
        Box::new(BurstyScheduler::new(seed))
    }
}

/// Exhaustively explore every schedule of `program` under `algo` on
/// `entry`'s execution semantics, checking each completed trace against
/// `entry`'s memory model once per structural equivalence class (see
/// the module docs on deduplication). Use only for litmus-sized
/// programs (the schedule count is exponential).
pub fn check_all_traces(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    max_steps: usize,
) -> Verdict {
    check_all_traces_backend(program, algo, entry, kind, CheckBackend::Dfs, max_steps)
}

/// [`check_all_traces`] deciding each history with `backend`. Verdicts
/// are backend-independent (both procedures are exact); this selects
/// *how* they are computed, e.g. to route the sweep through the SAT
/// backend for benchmarking or cross-validation.
pub fn check_all_traces_backend(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    backend: CheckBackend,
    max_steps: usize,
) -> Verdict {
    check_all_traces_serial(
        program,
        algo,
        entry,
        kind,
        backend,
        max_steps,
        &SharedVerdictMemo::new(),
    )
}

/// Parallel variant of [`check_all_traces`]: the serial exploration
/// cursor feeds deduplicated traces to `cfg.effective_threads()` scoped
/// checker workers sharing a fresh verdict memo. Verdict and violating
/// trace are identical to the serial path (see module docs); falls back
/// to it outright when the effective thread count is 1.
pub fn check_all_traces_par(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    max_steps: usize,
    cfg: &ParallelConfig,
) -> Verdict {
    check_all_traces_shared(
        program,
        algo,
        entry,
        kind,
        max_steps,
        cfg,
        &SharedVerdictMemo::new(),
    )
}

/// [`check_all_traces_par`] with a caller-owned [`SharedVerdictMemo`],
/// so several sweeps (across models, properties, and programs) reuse
/// each other's per-history verdicts.
pub fn check_all_traces_shared(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    max_steps: usize,
    cfg: &ParallelConfig,
    memo: &SharedVerdictMemo,
) -> Verdict {
    check_all_traces_shared_backend(
        program,
        algo,
        entry,
        kind,
        CheckBackend::Dfs,
        max_steps,
        cfg,
        memo,
    )
}

/// [`check_all_traces_shared`] deciding each history with `backend`.
#[allow(clippy::too_many_arguments)]
pub fn check_all_traces_shared_backend(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    backend: CheckBackend,
    max_steps: usize,
    cfg: &ParallelConfig,
    memo: &SharedVerdictMemo,
) -> Verdict {
    let threads = cfg.effective_threads();
    if threads <= 1 {
        return check_all_traces_serial(program, algo, entry, kind, backend, max_steps, memo);
    }

    let mut verdict = Verdict::passing(entry);
    let model = entry.model;
    // Sweep-wide state shared by the DPOR workers. Checking happens
    // inline in the visit callback (the explorer already distributes
    // machine runs across workers; a separate checker pool would idle).
    let seen: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let tm: Mutex<TmSnapshot> = Mutex::new(TmSnapshot::default());
    let dedup_hits = AtomicU64::new(0);
    let histories_checked = AtomicU64::new(0);
    let memo_hits = AtomicU64::new(0);
    let schedule_seq = AtomicU64::new(0);
    // Violation witness keyed by absolute decision path; the keeper is
    // the lexicographically least, which is the leaf the serial DFS
    // stops at — so verdict and witness match the serial sweep at every
    // worker count.
    let violation: Mutex<Option<(Vec<usize>, Trace)>> = Mutex::new(None);

    let lex_less = |a: &[usize], b: &[usize]| -> bool {
        for (x, y) in a.iter().zip(b.iter()) {
            if x != y {
                return x < y;
            }
        }
        a.len() < b.len()
    };

    let out = explore_dpor_par(
        &|| build_machine(program, algo, entry.exec),
        max_steps,
        threads,
        &|r, path| {
            let seq = schedule_seq.fetch_add(1, Ordering::Relaxed);
            flight::emit(EventKind::McSchedule, seq, u64::from(r.completed));
            if !r.completed {
                return false;
            }
            tm.lock().unwrap().absorb(&tm_counts_from_trace(&r.trace));
            let key = r.trace.cache_key();
            if !seen.lock().unwrap().insert(key) {
                dedup_hits.fetch_add(1, Ordering::Relaxed);
                flight::emit(EventKind::McDedupHit, key, 0);
                // The class is already decided, but if it is the
                // violating one and this representative's path is
                // smaller, it is the witness the serial sweep reports.
                let mut v = violation.lock().unwrap();
                if let Some((vp, vt)) = v.as_mut() {
                    if vt.cache_key() == key {
                        if lex_less(path, vp) {
                            *vp = path.to_vec();
                            *vt = r.trace.clone();
                        }
                        return true; // still a violating leaf: tighten pruning
                    }
                }
                return false;
            }
            let checked = histories_checked.fetch_add(1, Ordering::Relaxed) + 1;
            flight::emit(EventKind::McHistoryChecked, checked, 0);
            let (ok, hits) =
                trace_satisfies_memo(&r.trace, model, kind, backend, Some((memo, entry.key)));
            memo_hits.fetch_add(hits, Ordering::Relaxed);
            if !ok {
                flight::emit(EventKind::McViolation, checked, 0);
                let mut v = violation.lock().unwrap();
                if v.as_ref().is_none_or(|(vp, _)| lex_less(path, vp)) {
                    *v = Some((path.to_vec(), r.trace.clone()));
                }
                return true;
            }
            false
        },
    );

    verdict.runs = out.executed;
    verdict.truncated = out.truncated;
    verdict.stats.schedules = out.executed as u64;
    verdict.stats.truncated = out.truncated as u64;
    verdict.stats.dedup_hits = dedup_hits.into_inner();
    verdict.stats.histories_checked = histories_checked.into_inner();
    verdict.stats.memo_hits = memo_hits.into_inner();
    verdict.stats.machine = out.stats;
    apply_dpor_stats(&mut verdict.stats, &out);
    verdict.waste = out.waste;
    verdict.tm = tm.into_inner().unwrap();
    verdict.stats.workers = threads as u64;
    if let Some((_, trace)) = violation.into_inner().unwrap() {
        verdict.ok = false;
        verdict.violation = Some(trace);
    }
    verdict
}

fn check_all_traces_serial(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    backend: CheckBackend,
    max_steps: usize,
    memo: &SharedVerdictMemo,
) -> Verdict {
    let mut verdict = Verdict::passing(entry);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut histories_checked = 0u64;
    let mut memo_hits = 0u64;
    let mut tm = TmSnapshot::default();
    let mut schedule_seq = 0u64;
    let out = explore_dpor(
        || build_machine(program, algo, entry.exec),
        max_steps,
        |r| {
            flight::emit(EventKind::McSchedule, schedule_seq, u64::from(r.completed));
            schedule_seq += 1;
            if !r.completed {
                return false; // counted by the explorer; skip checking prefixes
            }
            tm.absorb(&tm_counts_from_trace(&r.trace));
            if !seen.insert(r.trace.cache_key()) {
                verdict.stats.dedup_hits += 1;
                flight::emit(EventKind::McDedupHit, r.trace.cache_key(), 0);
                return false;
            }
            histories_checked += 1;
            flight::emit(EventKind::McHistoryChecked, histories_checked, 0);
            let (ok, hits) = trace_satisfies_memo(
                &r.trace,
                entry.model,
                kind,
                backend,
                Some((memo, entry.key)),
            );
            memo_hits += hits;
            if !ok {
                verdict.ok = false;
                verdict.violation = Some(r.trace.clone());
                flight::emit(EventKind::McViolation, histories_checked, 0);
                return true;
            }
            false
        },
    );
    verdict.runs = out.executed;
    verdict.truncated = out.truncated;
    verdict.stats.schedules = out.executed as u64;
    verdict.stats.truncated = out.truncated as u64;
    verdict.stats.histories_checked = histories_checked;
    verdict.stats.memo_hits = memo_hits;
    verdict.stats.machine = out.stats;
    apply_dpor_stats(&mut verdict.stats, &out);
    verdict.waste = out.waste;
    verdict.tm = tm;
    verdict
}

/// Copy a DPOR exploration's reduction counters into sweep stats.
fn apply_dpor_stats(stats: &mut McStats, out: &DporOutcome) {
    stats.dpor_executed = out.executed as u64;
    stats.dpor_classes = out.classes as u64;
    stats.dpor_blocked = out.blocked as u64;
    stats.frontier_steals = out.frontier_steals;
    stats.sleep_skips = out.sleep_skips;
    stats.races = out.races;
}

/// Brute-force exhaustive sweep: every schedule executed, equivalence
/// handled only by after-the-fact trace dedup. This is the pre-DPOR
/// algorithm, kept as the **oracle** the reduction is validated against
/// (`dpor` history classes and verdicts must match it exactly); use
/// [`check_all_traces`] for real sweeps — it visits the same classes in
/// orders of magnitude fewer runs.
pub fn check_all_traces_enumerative(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    max_steps: usize,
) -> Verdict {
    let memo = SharedVerdictMemo::new();
    let mut verdict = Verdict::passing(entry);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut histories_checked = 0u64;
    let mut memo_hits = 0u64;
    let mut tm = TmSnapshot::default();
    let out = explore(
        || build_machine(program, algo, entry.exec),
        max_steps,
        |r| {
            if !r.completed {
                return false;
            }
            tm.absorb(&tm_counts_from_trace(&r.trace));
            if !seen.insert(r.trace.cache_key()) {
                verdict.stats.dedup_hits += 1;
                return false;
            }
            histories_checked += 1;
            let (ok, hits) = trace_satisfies_memo(
                &r.trace,
                entry.model,
                kind,
                CheckBackend::Dfs,
                Some((&memo, entry.key)),
            );
            memo_hits += hits;
            if !ok {
                verdict.ok = false;
                verdict.violation = Some(r.trace.clone());
                return true;
            }
            false
        },
    );
    verdict.runs = out.runs;
    verdict.truncated = out.truncated;
    verdict.stats.schedules = out.runs as u64;
    verdict.stats.truncated = out.truncated as u64;
    verdict.stats.histories_checked = histories_checked;
    verdict.stats.memo_hits = memo_hits;
    verdict.stats.machine = out.stats;
    verdict.tm = tm;
    verdict
}

/// The set of structural history classes a sweep visits, with the run
/// count it took to visit them — the raw material of the
/// DPOR-vs-enumeration equivalence oracle.
#[derive(Clone, Debug, Default)]
pub struct ClassSweep {
    /// `Trace::cache_key` of every completed run.
    pub keys: HashSet<u64>,
    /// Machine runs executed (for DPOR this includes blocked sleep-set
    /// probes that abort partway; `completed` is the useful subset).
    pub executed: u64,
    /// Runs that ran to completion and yielded a class key.
    pub completed: u64,
    /// Runs cut off by the step bound.
    pub truncated: u64,
    /// Runs aborted at a sleep-blocked node (0 for enumeration, which
    /// has no sleep sets).
    pub blocked: u64,
    /// DPOR waste attribution (empty for enumeration).
    pub waste: DporStats,
}

/// Enumerate every schedule and collect the completed-trace class keys.
pub fn class_sweep_enumerative(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    max_steps: usize,
) -> ClassSweep {
    let mut sweep = ClassSweep::default();
    let out = explore(
        || build_machine(program, algo, entry.exec),
        max_steps,
        |r| {
            if r.completed {
                sweep.completed += 1;
                sweep.keys.insert(r.trace.cache_key());
            }
            false
        },
    );
    sweep.executed = out.runs as u64;
    sweep.truncated = out.truncated as u64;
    sweep
}

/// Collect the completed-trace class keys the DPOR explorer visits.
/// Equal key sets with [`class_sweep_enumerative`] — at a fraction of
/// its `executed` — is the reduction's correctness property.
pub fn class_sweep_dpor(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    max_steps: usize,
) -> ClassSweep {
    let mut sweep = ClassSweep::default();
    let out = explore_dpor(
        || build_machine(program, algo, entry.exec),
        max_steps,
        |r| {
            if r.completed {
                sweep.completed += 1;
                sweep.keys.insert(r.trace.cache_key());
            }
            false
        },
    );
    sweep.executed = out.executed as u64;
    sweep.truncated = out.truncated as u64;
    sweep.blocked = out.blocked as u64;
    sweep.waste = out.waste;
    sweep
}

/// Sample random schedules of `program` over the explicit seed range,
/// checking each completed trace. Two calls with equal [`SweepSeeds`]
/// replay byte-identical schedules. Stops at the first violating seed.
pub fn check_random(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    seeds: SweepSeeds,
    max_steps: usize,
) -> Verdict {
    check_random_serial(
        program,
        algo,
        entry,
        kind,
        seeds,
        max_steps,
        &SharedVerdictMemo::new(),
    )
}

/// Parallel variant of [`check_random`]: stripes the seed range over
/// `cfg.effective_threads()` scoped workers with a fresh verdict memo.
/// The `ok` verdict matches the serial sweep; the reported violation is
/// the one from the lowest violating seed (see module docs). Falls back
/// to the serial sweep at one effective thread.
pub fn check_random_par(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    seeds: SweepSeeds,
    max_steps: usize,
    cfg: &ParallelConfig,
) -> Verdict {
    check_random_shared(
        program,
        algo,
        entry,
        kind,
        seeds,
        max_steps,
        cfg,
        &SharedVerdictMemo::new(),
    )
}

/// [`check_random_par`] with a caller-owned [`SharedVerdictMemo`] for
/// cross-sweep verdict reuse.
#[allow(clippy::too_many_arguments)]
pub fn check_random_shared(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    seeds: SweepSeeds,
    max_steps: usize,
    cfg: &ParallelConfig,
    memo: &SharedVerdictMemo,
) -> Verdict {
    let threads = cfg.effective_threads().min(seeds.runs.max(1) as usize);
    if threads <= 1 {
        return check_random_serial(program, algo, entry, kind, seeds, max_steps, memo);
    }

    let mut verdict = Verdict::passing(entry);
    let model = entry.model;
    let seen: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    // Lowest violating seed found so far; seeds above it are skipped
    // (they can never lower the minimum), seeds below it never are.
    let best_seed = AtomicU64::new(u64::MAX);
    let violation: Mutex<Option<(u64, Trace)>> = Mutex::new(None);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let seen = &seen;
                let best_seed = &best_seed;
                let violation = &violation;
                s.spawn(move || {
                    let mut local = Verdict::passing(entry);
                    for seed in seeds.iter().skip(t).step_by(threads) {
                        if seed > best_seed.load(Ordering::Relaxed) {
                            continue;
                        }
                        let mut sched = scheduler_for_seed(seed);
                        let r =
                            build_machine(program, algo, entry.exec).run(sched.as_mut(), max_steps);
                        local.runs += 1;
                        local.stats.schedules += 1;
                        local.stats.machine.absorb(&r.stats);
                        flight::emit(EventKind::McSchedule, seed, u64::from(r.completed));
                        if !r.completed {
                            local.truncated += 1;
                            local.stats.truncated += 1;
                            continue;
                        }
                        local.tm.absorb(&tm_counts_from_trace(&r.trace));
                        if !seen.lock().unwrap().insert(r.trace.cache_key()) {
                            local.stats.dedup_hits += 1;
                            flight::emit(EventKind::McDedupHit, r.trace.cache_key(), 0);
                            continue;
                        }
                        local.stats.histories_checked += 1;
                        flight::emit(EventKind::McHistoryChecked, seed, 0);
                        let (ok, hits) = trace_satisfies_memo(
                            &r.trace,
                            model,
                            kind,
                            CheckBackend::Dfs,
                            Some((memo, entry.key)),
                        );
                        local.stats.memo_hits += hits;
                        if !ok {
                            flight::emit(EventKind::McViolation, seed, 0);
                            best_seed.fetch_min(seed, Ordering::Relaxed);
                            let mut v = violation.lock().unwrap();
                            if v.as_ref().is_none_or(|(vs, _)| seed < *vs) {
                                *v = Some((seed, r.trace));
                            }
                        }
                    }
                    local
                })
            })
            .collect();

        for h in handles {
            let local = h.join().expect("random-sweep worker panicked");
            verdict.runs += local.runs;
            verdict.truncated += local.truncated;
            verdict.stats.absorb(&local.stats);
            verdict.tm.absorb(&local.tm);
        }
    });

    verdict.stats.workers = threads as u64;
    if let Some((_, trace)) = violation.into_inner().unwrap() {
        verdict.ok = false;
        verdict.violation = Some(trace);
    }
    verdict
}

#[allow(clippy::too_many_arguments)]
fn check_random_serial(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    seeds: SweepSeeds,
    max_steps: usize,
    memo: &SharedVerdictMemo,
) -> Verdict {
    let mut verdict = Verdict::passing(entry);
    let mut seen: HashSet<u64> = HashSet::new();
    for seed in seeds.iter() {
        // Alternate uniform and bursty schedules: uniform explores
        // diffuse interleavings, bursts hit the tight windows of the
        // Figure 5 constructions.
        let mut sched = scheduler_for_seed(seed);
        let r = build_machine(program, algo, entry.exec).run(sched.as_mut(), max_steps);
        verdict.runs += 1;
        verdict.stats.schedules += 1;
        verdict.stats.machine.absorb(&r.stats);
        flight::emit(EventKind::McSchedule, seed, u64::from(r.completed));
        if !r.completed {
            verdict.truncated += 1;
            verdict.stats.truncated += 1;
            continue;
        }
        verdict.tm.absorb(&tm_counts_from_trace(&r.trace));
        if !seen.insert(r.trace.cache_key()) {
            verdict.stats.dedup_hits += 1;
            flight::emit(EventKind::McDedupHit, r.trace.cache_key(), 0);
            continue;
        }
        verdict.stats.histories_checked += 1;
        flight::emit(EventKind::McHistoryChecked, seed, 0);
        let (ok, hits) = trace_satisfies_memo(
            &r.trace,
            entry.model,
            kind,
            CheckBackend::Dfs,
            Some((memo, entry.key)),
        );
        verdict.stats.memo_hits += hits;
        if !ok {
            verdict.ok = false;
            verdict.violation = Some(r.trace);
            flight::emit(EventKind::McViolation, seed, 0);
            return verdict;
        }
    }
    verdict
}

/// Search random schedules over the explicit seed range for a trace
/// with **no** satisfying corresponding history (a violation witness).
/// Returns the first one found.
pub fn find_violation(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    seeds: SweepSeeds,
    max_steps: usize,
) -> Option<Trace> {
    check_random(program, algo, entry, kind, seeds, max_steps).violation
}

/// Parallel variant of [`find_violation`] via [`check_random_par`]:
/// returns the violation from the lowest violating seed.
pub fn find_violation_par(
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    seeds: SweepSeeds,
    max_steps: usize,
    cfg: &ParallelConfig,
) -> Option<Trace> {
    check_random_par(program, algo, entry, kind, seeds, max_steps, cfg).violation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::{GlobalLockTm, SkipWriteTm};
    use crate::program::{Stmt, ThreadProg, TxOp};
    use jungle_core::ids::X;
    use jungle_core::model::{Relaxed, Sc};
    use jungle_core::registry::{entry as registry_entry, ExecSemantics};

    /// The old (hw = TSO machine, SC checker) pairing used by these
    /// tests, as an explicit custom entry.
    fn sc_on_tso() -> ModelEntry {
        ModelEntry::new("SC", &Sc, ExecSemantics::Tso, "test pairing")
    }

    #[test]
    fn single_thread_global_lock_always_opaque() {
        let p = Program(vec![ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Read(X)]),
            Stmt::NtRead(X),
        ])]);
        let v = check_all_traces(
            &p,
            &GlobalLockTm,
            &ModelEntry::checker_game(&Sc),
            CheckKind::Opacity,
            1_000,
        );
        assert!(v.ok, "violation: {:?}", v.violation);
        assert_eq!(v.runs, 1); // single thread → single schedule
                               // Exploration stats are recorded alongside the verdict.
        assert_eq!(v.stats.schedules, 1);
        assert_eq!(v.stats.histories_checked, 1);
        assert_eq!(v.stats.model, "SC");
        assert_eq!(v.stats.machine.model, "SC");
        assert!(v.stats.machine.steps > 0);
        assert_eq!(v.tm.commits, 1);
        assert_eq!(v.tm.txn_reads, 1);
        assert_eq!(v.tm.txn_writes, 1);
        assert_eq!(v.tm.nontxn_uninstrumented, 1); // global-lock reads are bare loads
    }

    #[test]
    fn skip_write_violates_even_single_threaded() {
        // Lemma 1's scenario: a committed transactional write followed
        // by an uninstrumented read of the same variable.
        let p = Program(vec![ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 5)]),
            Stmt::NtRead(X),
        ])]);
        let v = check_all_traces(
            &p,
            &SkipWriteTm,
            &ModelEntry::checker_game(&Relaxed),
            CheckKind::Opacity,
            1_000,
        );
        assert!(!v.ok);
        assert!(v.violation.is_some());
    }

    #[test]
    fn random_sampling_agrees_on_simple_case() {
        let p = Program(vec![ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 5)]),
            Stmt::NtRead(X),
        ])]);
        let good = check_random(
            &p,
            &GlobalLockTm,
            &ModelEntry::checker_game(&Sc),
            CheckKind::Opacity,
            SweepSeeds::new(0, 5),
            1_000,
        );
        assert!(good.ok);
        assert_eq!(good.runs, 5);
        let bad = find_violation(
            &p,
            &SkipWriteTm,
            &ModelEntry::checker_game(&Sc),
            CheckKind::Opacity,
            SweepSeeds::new(0, 5),
            1_000,
        );
        assert!(bad.is_some());
    }

    #[test]
    fn sweep_seeds_are_explicit_and_reproducible() {
        assert_eq!(
            SweepSeeds::new(7, 3).iter().collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        let p = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)]), Stmt::NtRead(X)]),
            ThreadProg(vec![Stmt::NtRead(X)]),
        ]);
        let run = |seeds| {
            check_random(
                &p,
                &GlobalLockTm,
                &sc_on_tso(),
                CheckKind::Opacity,
                seeds,
                2_000,
            )
        };
        let a = run(SweepSeeds::new(11, 6));
        let b = run(SweepSeeds::new(11, 6));
        assert_eq!(a.ok, b.ok);
        assert_eq!(a.stats.dedup_hits, b.stats.dedup_hits);
        assert_eq!(a.stats.machine.steps, b.stats.machine.steps);
    }

    #[test]
    fn parallel_exhaustive_matches_serial() {
        let two_thread = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)]), Stmt::NtRead(X)]),
            ThreadProg(vec![Stmt::NtRead(X)]),
        ]);
        for (algo, expect_ok) in [
            (&GlobalLockTm as &dyn TmAlgo, true),
            (&SkipWriteTm as &dyn TmAlgo, false),
        ] {
            let serial =
                check_all_traces(&two_thread, algo, &sc_on_tso(), CheckKind::Opacity, 4_000);
            assert_eq!(serial.ok, expect_ok);
            for threads in [2, 4] {
                let par = check_all_traces_par(
                    &two_thread,
                    algo,
                    &sc_on_tso(),
                    CheckKind::Opacity,
                    4_000,
                    &ParallelConfig::with_threads(threads),
                );
                assert_eq!(par.ok, serial.ok, "threads={threads}");
                assert_eq!(par.workers(), threads as u64);
                assert_eq!(
                    par.violation.as_ref().map(|t| t.cache_key()),
                    serial.violation.as_ref().map(|t| t.cache_key()),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_random_matches_serial_verdict() {
        let p = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)]), Stmt::NtRead(X)]),
            ThreadProg(vec![Stmt::NtRead(X)]),
        ]);
        let seeds = SweepSeeds::new(0, 24);
        for (algo, expect_ok) in [
            (&GlobalLockTm as &dyn TmAlgo, true),
            (&SkipWriteTm as &dyn TmAlgo, false),
        ] {
            let serial = check_random(&p, algo, &sc_on_tso(), CheckKind::Opacity, seeds, 4_000);
            assert_eq!(serial.ok, expect_ok);
            for threads in [2, 4] {
                let par = check_random_par(
                    &p,
                    algo,
                    &sc_on_tso(),
                    CheckKind::Opacity,
                    seeds,
                    4_000,
                    &ParallelConfig::with_threads(threads),
                );
                assert_eq!(par.ok, serial.ok, "threads={threads}");
                assert_eq!(par.workers(), threads as u64);
                if !expect_ok {
                    assert!(par.violation.is_some());
                }
            }
        }
    }

    #[test]
    fn shared_memo_reuses_verdicts_across_sweeps() {
        let p = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)]), Stmt::NtRead(X)]),
            ThreadProg(vec![Stmt::NtRead(X)]),
        ]);
        let memo = SharedVerdictMemo::new();
        let cfg = ParallelConfig::with_threads(1);
        let e = sc_on_tso();
        let a = check_all_traces_shared(
            &p,
            &GlobalLockTm,
            &e,
            CheckKind::Opacity,
            4_000,
            &cfg,
            &memo,
        );
        assert!(a.ok);
        assert!(!memo.is_empty());
        let after_first = memo.hits();
        // An identical second sweep answers every history from the memo.
        let b = check_all_traces_shared(
            &p,
            &GlobalLockTm,
            &e,
            CheckKind::Opacity,
            4_000,
            &cfg,
            &memo,
        );
        assert!(b.ok);
        assert!(
            memo.hits() > after_first,
            "second sweep must hit the shared memo"
        );
        assert!(b.stats.memo_hits > 0);
    }

    #[test]
    fn memo_persists_and_preloads_across_runs() {
        let p = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)]), Stmt::NtRead(X)]),
            ThreadProg(vec![Stmt::NtRead(X)]),
        ]);
        let e = registry_entry("SC").unwrap();
        let cfg = ParallelConfig::with_threads(1);
        let memo = SharedVerdictMemo::new();
        let a =
            check_all_traces_shared(&p, &GlobalLockTm, e, CheckKind::Opacity, 4_000, &cfg, &memo);
        assert!(a.ok);
        assert!(!memo.is_empty());
        assert_eq!(memo.cross_run_hits(), 0, "nothing preloaded yet");

        let dir = std::env::temp_dir().join(format!("jungle-memo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = memo.save_dir(&dir).unwrap();
        assert_eq!(written, memo.len());

        // A fresh memo in a "new run" preloads the verdicts and answers
        // every history from disk.
        let fresh = SharedVerdictMemo::new();
        let loaded = fresh.load_dir(&dir).unwrap();
        assert_eq!(loaded, written);
        assert_eq!(fresh.preloaded_entries(), loaded as u64);
        let b = check_all_traces_shared(
            &p,
            &GlobalLockTm,
            e,
            CheckKind::Opacity,
            4_000,
            &cfg,
            &fresh,
        );
        assert!(b.ok);
        assert!(
            fresh.cross_run_hits() > 0,
            "second run must hit the preloaded verdicts"
        );
        assert_eq!(fresh.cross_run_hits(), fresh.hits());

        // A missing directory is a clean no-op.
        assert_eq!(
            SharedVerdictMemo::new()
                .load_dir(&dir.join("missing"))
                .unwrap(),
            0
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dedup_skips_structurally_identical_traces() {
        // Two threads racing on the TSO simulator produce many
        // instruction interleavings that collapse to identical
        // operation structures.
        let p = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)]), Stmt::NtRead(X)]),
            ThreadProg(vec![Stmt::NtRead(X)]),
        ]);
        let v = check_all_traces(&p, &GlobalLockTm, &sc_on_tso(), CheckKind::Opacity, 4_000);
        assert!(v.ok);
        assert!(
            v.dedup_hits() > 0,
            "expected duplicate traces: {:?}",
            v.stats
        );
        // Dedup means strictly fewer checker invocations than schedules.
        assert!(v.stats.histories_checked + v.stats.dedup_hits <= v.stats.schedules);
        assert_eq!(v.workers(), 0); // serial sweep
    }

    #[test]
    fn rmo_registry_sweep_smoke() {
        // One matched-model sweep on the RMO registry entry: the
        // global-lock TM stays RMO-opaque on the Figure 1 program even
        // when the machine itself executes RMO (stale loads included).
        let p = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)])]),
            ThreadProg(vec![Stmt::NtRead(X)]),
        ]);
        let e = registry_entry("RMO").unwrap();
        let v = check_all_traces(&p, &GlobalLockTm, e, CheckKind::Opacity, 6_000);
        assert!(v.ok, "violation: {:?}", v.violation);
        assert_eq!(v.stats.model, "RMO");
        assert_eq!(v.stats.machine.model, "RMO");
        assert!(
            v.stats.machine.stale_loads > 0,
            "RMO execution must have explored stale reads: {:?}",
            v.stats.machine
        );
    }
}
