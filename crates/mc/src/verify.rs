//! Verification driver: programs × algorithms × schedules → verdicts.
//!
//! The paper defines: a TM implementation `I` *guarantees opacity
//! parametrized by `M`* iff for every trace `r ∈ L(I)` **there exists**
//! a corresponding history that ensures opacity parametrized by `M`
//! (and analogously for SGLA). [`trace_satisfies`] decides the inner
//! existential (trying the cheap canonical correspondence first);
//! [`check_all_traces`] discharges the outer universal by exhaustive
//! schedule exploration (small programs), and [`check_random`] /
//! [`find_violation`] sample it with seeded-random schedules.

use crate::algos::TmAlgo;
use crate::obs::tm_counts_from_trace;
use crate::program::Program;
use jungle_core::ids::ProcId;
use jungle_core::model::MemoryModel;
use jungle_core::opacity::check_opacity;
use jungle_core::sgla::check_sgla;
use jungle_isa::trace::Trace;
use jungle_memsim::{explore, BurstyScheduler, HwModel, Machine, RandomScheduler, Scheduler};
use jungle_obs::{McStats, TmSnapshot};

/// Which correctness property to check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// Parametrized opacity (§3.3).
    Opacity,
    /// Single global lock atomicity (§6.2).
    Sgla,
}

/// Outcome of a multi-trace verification.
#[derive(Debug)]
pub struct Verdict {
    /// True if every checked trace had a satisfying corresponding
    /// history.
    pub ok: bool,
    /// A violating trace, if one was found.
    pub violation: Option<Trace>,
    /// Number of runs examined.
    pub runs: usize,
    /// Runs that hit the step bound before completing (skipped unless
    /// `check_incomplete` was requested).
    pub truncated: usize,
    /// Exploration counters: schedules, histories checked, and the
    /// aggregated simulated-machine statistics.
    pub stats: McStats,
    /// TM runtime counters aggregated over every checked trace.
    pub tm: TmSnapshot,
}

impl Verdict {
    fn passing() -> Self {
        Verdict {
            ok: true,
            violation: None,
            runs: 0,
            truncated: 0,
            stats: McStats::default(),
            tm: TmSnapshot::default(),
        }
    }
}

/// Does some history corresponding to `trace` satisfy the property
/// under `model`?
pub fn trace_satisfies(trace: &Trace, model: &dyn MemoryModel, kind: CheckKind) -> bool {
    let pass = |h: &jungle_core::history::History| match kind {
        CheckKind::Opacity => check_opacity(h, model).is_opaque(),
        CheckKind::Sgla => check_sgla(h, model).is_sgla(),
    };
    // Fast path: the canonical linearize-at-response history.
    if let Ok(h) = trace.canonical_history() {
        if pass(&h) {
            return true;
        }
    }
    trace.exists_corresponding(|h| pass(h)).is_some()
}

fn build_machine(program: &Program, algo: &dyn TmAlgo, hw: HwModel) -> Machine {
    let procs = program
        .0
        .iter()
        .enumerate()
        .map(|(i, t)| algo.make_process(ProcId(i as u32), t.clone()))
        .collect();
    Machine::new(hw, procs)
}

/// Exhaustively explore every schedule of `program` under `algo` and
/// `hw`, checking each completed trace. Use only for litmus-sized
/// programs (the schedule count is exponential).
pub fn check_all_traces(
    program: &Program,
    algo: &dyn TmAlgo,
    hw: HwModel,
    model: &dyn MemoryModel,
    kind: CheckKind,
    max_steps: usize,
) -> Verdict {
    let mut verdict = Verdict::passing();
    let mut histories_checked = 0u64;
    let mut tm = TmSnapshot::default();
    let out = explore(
        || build_machine(program, algo, hw),
        max_steps,
        |r| {
            if !r.completed {
                return false; // counted by explore; skip checking prefixes
            }
            histories_checked += 1;
            tm.absorb(&tm_counts_from_trace(&r.trace));
            if !trace_satisfies(&r.trace, model, kind) {
                verdict.ok = false;
                verdict.violation = Some(r.trace.clone());
                return true;
            }
            false
        },
    );
    verdict.runs = out.runs;
    verdict.truncated = out.truncated;
    verdict.stats.schedules = out.runs as u64;
    verdict.stats.truncated = out.truncated as u64;
    verdict.stats.histories_checked = histories_checked;
    verdict.stats.machine = out.stats;
    verdict.tm = tm;
    verdict
}

/// Sample `seeds` random schedules of `program`, checking each completed
/// trace.
pub fn check_random(
    program: &Program,
    algo: &dyn TmAlgo,
    hw: HwModel,
    model: &dyn MemoryModel,
    kind: CheckKind,
    seeds: std::ops::Range<u64>,
    max_steps: usize,
) -> Verdict {
    let mut verdict = Verdict::passing();
    for seed in seeds {
        // Alternate uniform and bursty schedules: uniform explores
        // diffuse interleavings, bursts hit the tight windows of the
        // Figure 5 constructions.
        let mut sched: Box<dyn Scheduler> = if seed % 2 == 0 {
            Box::new(RandomScheduler::new(seed))
        } else {
            Box::new(BurstyScheduler::new(seed))
        };
        let r = build_machine(program, algo, hw).run(sched.as_mut(), max_steps);
        verdict.runs += 1;
        verdict.stats.schedules += 1;
        verdict.stats.machine.absorb(&r.stats);
        if !r.completed {
            verdict.truncated += 1;
            verdict.stats.truncated += 1;
            continue;
        }
        verdict.stats.histories_checked += 1;
        verdict.tm.absorb(&tm_counts_from_trace(&r.trace));
        if !trace_satisfies(&r.trace, model, kind) {
            verdict.ok = false;
            verdict.violation = Some(r.trace);
            return verdict;
        }
    }
    verdict
}

/// Search random schedules for a trace with **no** satisfying
/// corresponding history (a violation witness). Returns the first one
/// found.
pub fn find_violation(
    program: &Program,
    algo: &dyn TmAlgo,
    hw: HwModel,
    model: &dyn MemoryModel,
    kind: CheckKind,
    seeds: std::ops::Range<u64>,
    max_steps: usize,
) -> Option<Trace> {
    check_random(program, algo, hw, model, kind, seeds, max_steps).violation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::{GlobalLockTm, SkipWriteTm};
    use crate::program::{Stmt, ThreadProg, TxOp};
    use jungle_core::ids::X;
    use jungle_core::model::{Relaxed, Sc};

    #[test]
    fn single_thread_global_lock_always_opaque() {
        let p = Program(vec![ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Read(X)]),
            Stmt::NtRead(X),
        ])]);
        let v = check_all_traces(
            &p,
            &GlobalLockTm,
            HwModel::Sc,
            &Sc,
            CheckKind::Opacity,
            1_000,
        );
        assert!(v.ok, "violation: {:?}", v.violation);
        assert_eq!(v.runs, 1); // single thread → single schedule
                               // Exploration stats are recorded alongside the verdict.
        assert_eq!(v.stats.schedules, 1);
        assert_eq!(v.stats.histories_checked, 1);
        assert!(v.stats.machine.steps > 0);
        assert_eq!(v.tm.commits, 1);
        assert_eq!(v.tm.txn_reads, 1);
        assert_eq!(v.tm.txn_writes, 1);
        assert_eq!(v.tm.nontxn_uninstrumented, 1); // global-lock reads are bare loads
    }

    #[test]
    fn skip_write_violates_even_single_threaded() {
        // Lemma 1's scenario: a committed transactional write followed
        // by an uninstrumented read of the same variable.
        let p = Program(vec![ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 5)]),
            Stmt::NtRead(X),
        ])]);
        let v = check_all_traces(
            &p,
            &SkipWriteTm,
            HwModel::Sc,
            &Relaxed,
            CheckKind::Opacity,
            1_000,
        );
        assert!(!v.ok);
        assert!(v.violation.is_some());
    }

    #[test]
    fn random_sampling_agrees_on_simple_case() {
        let p = Program(vec![ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 5)]),
            Stmt::NtRead(X),
        ])]);
        let good = check_random(
            &p,
            &GlobalLockTm,
            HwModel::Sc,
            &Sc,
            CheckKind::Opacity,
            0..5,
            1_000,
        );
        assert!(good.ok);
        assert_eq!(good.runs, 5);
        let bad = find_violation(
            &p,
            &SkipWriteTm,
            HwModel::Sc,
            &Sc,
            CheckKind::Opacity,
            0..5,
            1_000,
        );
        assert!(bad.is_some());
    }
}
