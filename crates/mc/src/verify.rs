//! Verification driver: programs × algorithms × schedules → verdicts.
//!
//! The paper defines: a TM implementation `I` *guarantees opacity
//! parametrized by `M`* iff for every trace `r ∈ L(I)` **there exists**
//! a corresponding history that ensures opacity parametrized by `M`
//! (and analogously for SGLA). [`trace_satisfies`] decides the inner
//! existential (trying the cheap canonical correspondence first);
//! [`check_all_traces`] discharges the outer universal by exhaustive
//! schedule exploration (small programs), and [`check_random`] /
//! [`find_violation`] sample it with seeded-random schedules.
//!
//! ### Redundancy elimination
//!
//! Exhaustive store-buffer scheduling produces many instruction-level
//! interleavings that collapse to the *same* operations with the same
//! overlap structure — and the inner existential depends on nothing
//! else. The sweeps therefore deduplicate completed traces by
//! [`Trace::cache_key`] (skips counted as `McStats::dedup_hits`) and
//! memoize per-history checker verdicts by
//! [`History::cache_key`](jungle_core::history::History::cache_key)
//! across all traces of a sweep (hits counted as `McStats::memo_hits`).
//! Both keys are 64-bit structural fingerprints; a collision between
//! distinct structures is possible in principle but vanishingly
//! unlikely, and each sweep's memo is scoped to one (model, property)
//! pair so keys never mix incompatible verdicts.
//!
//! [`check_all_traces_par`] additionally fans the per-trace checking
//! over a scoped worker pool: the exploration cursor stays serial (it
//! is cheap next to the exponential checker searches) and owns the
//! dedup set, while workers drain a channel of `(sequence, trace)`
//! pairs sharing the verdict memo. The reported violation is the one
//! with the lowest sequence number — the first violating trace in
//! serial exploration order — so the verdict *and* the violating trace
//! match the serial path for every thread count. Exploration counters
//! (`runs`, `schedules`) can exceed the serial early-stop values, since
//! the cursor may produce a few more schedules before a worker's
//! violation report reaches it.

use crate::algos::TmAlgo;
use crate::obs::tm_counts_from_trace;
use crate::program::Program;
use jungle_core::ids::ProcId;
use jungle_core::model::MemoryModel;
use jungle_core::opacity::check_opacity;
use jungle_core::par::ParallelConfig;
use jungle_core::sgla::check_sgla;
use jungle_isa::trace::Trace;
use jungle_memsim::{explore, BurstyScheduler, HwModel, Machine, RandomScheduler, Scheduler};
use jungle_obs::{McStats, TmSnapshot};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};

/// Which correctness property to check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// Parametrized opacity (§3.3).
    Opacity,
    /// Single global lock atomicity (§6.2).
    Sgla,
}

/// The seed range of a randomized sweep, with an **explicit** base so
/// two sweeps over the same program are reproducibly identical iff
/// their `(base, runs)` pairs are — there is no hidden default seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepSeeds {
    /// First seed used.
    pub base: u64,
    /// Number of consecutive seeds (`base, base+1, …, base+runs-1`).
    pub runs: u64,
}

impl SweepSeeds {
    /// The sweep over seeds `base, base+1, …, base+runs-1`.
    pub fn new(base: u64, runs: u64) -> Self {
        SweepSeeds { base, runs }
    }

    /// The seeds, in order.
    pub fn iter(self) -> impl Iterator<Item = u64> {
        self.base..self.base.saturating_add(self.runs)
    }
}

/// Outcome of a multi-trace verification.
#[derive(Debug)]
pub struct Verdict {
    /// True if every checked trace had a satisfying corresponding
    /// history. Deterministic: independent of thread count and, for
    /// randomized sweeps, fully determined by the explicit
    /// [`SweepSeeds`].
    pub ok: bool,
    /// A violating trace, if one was found — always the first violating
    /// trace in exploration (or seed) order, even for parallel sweeps.
    pub violation: Option<Trace>,
    /// Number of runs examined. For a parallel exhaustive sweep this
    /// may exceed the serial early-stop count (see module docs); it is
    /// zero for a vacuously passing verdict.
    pub runs: usize,
    /// Runs that hit the step bound before completing. Completed-trace
    /// checking never includes these; like `runs`, zero when nothing
    /// was explored.
    pub truncated: usize,
    /// Exploration counters: schedules, histories checked, dedup/memo
    /// hits, worker threads, and the aggregated simulated-machine
    /// statistics.
    pub stats: McStats,
    /// TM runtime counters aggregated over every completed trace
    /// (including deduplicated ones — dedup skips the *checking*, not
    /// the accounting).
    pub tm: TmSnapshot,
}

impl Verdict {
    fn passing() -> Self {
        Verdict {
            ok: true,
            violation: None,
            runs: 0,
            truncated: 0,
            stats: McStats::default(),
            tm: TmSnapshot::default(),
        }
    }

    /// Completed traces skipped because a structurally identical trace
    /// was already checked in this sweep.
    pub fn dedup_hits(&self) -> u64 {
        self.stats.dedup_hits
    }

    /// Checker worker threads used (0 = serial sweep).
    pub fn workers(&self) -> u64 {
        self.stats.workers
    }
}

/// Sweep-wide bounded memo of per-history checker verdicts, keyed by
/// `History::cache_key`. Scoped to one (model, property) pair — the
/// caller creates one per sweep — so a key can never replay a verdict
/// computed under different parameters. Stops admitting entries when
/// full rather than evicting.
struct VerdictMemo {
    cap: usize,
    map: Mutex<HashMap<u64, bool>>,
}

impl VerdictMemo {
    /// Entries admitted per sweep: enough for every distinct history
    /// litmus-scale sweeps produce, with a hard memory ceiling.
    const CAP: usize = 1 << 16;

    fn new() -> Self {
        VerdictMemo {
            cap: Self::CAP,
            map: Mutex::new(HashMap::new()),
        }
    }

    fn get(&self, key: u64) -> Option<bool> {
        self.map.lock().unwrap().get(&key).copied()
    }

    fn put(&self, key: u64, verdict: bool) {
        let mut m = self.map.lock().unwrap();
        if m.len() < self.cap {
            m.insert(key, verdict);
        }
    }
}

/// Does some history corresponding to `trace` satisfy the property
/// under `model`?
pub fn trace_satisfies(trace: &Trace, model: &dyn MemoryModel, kind: CheckKind) -> bool {
    trace_satisfies_memo(trace, model, kind, None).0
}

/// [`trace_satisfies`] with an optional sweep-wide verdict memo;
/// returns the verdict and the number of memo hits.
fn trace_satisfies_memo(
    trace: &Trace,
    model: &dyn MemoryModel,
    kind: CheckKind,
    memo: Option<&VerdictMemo>,
) -> (bool, u64) {
    let mut memo_hits = 0u64;
    let mut pass = |h: &jungle_core::history::History| {
        let key = memo.map(|_| h.cache_key());
        if let (Some(m), Some(k)) = (memo, key) {
            if let Some(v) = m.get(k) {
                memo_hits += 1;
                return v;
            }
        }
        let v = match kind {
            CheckKind::Opacity => check_opacity(h, model).is_opaque(),
            CheckKind::Sgla => check_sgla(h, model).is_sgla(),
        };
        if let (Some(m), Some(k)) = (memo, key) {
            m.put(k, v);
        }
        v
    };
    // Fast path: the canonical linearize-at-response history.
    let canonical = trace.canonical_history().ok();
    if let Some(h) = &canonical {
        if pass(h) {
            return (true, memo_hits);
        }
    }
    // The canonical history failed (or was ill-formed); enumerate the
    // rest, skipping the canonical order so it is not checked twice.
    let canon_ids: Option<Vec<jungle_core::ids::OpId>> =
        canonical.map(|h| h.ops().iter().map(|o| o.id).collect());
    let found = trace.exists_corresponding(|h| {
        if let Some(ids) = &canon_ids {
            if h.ops().iter().map(|o| o.id).eq(ids.iter().copied()) {
                return false; // already rejected above
            }
        }
        pass(h)
    });
    (found.is_some(), memo_hits)
}

fn build_machine(program: &Program, algo: &dyn TmAlgo, hw: HwModel) -> Machine {
    let procs = program
        .0
        .iter()
        .enumerate()
        .map(|(i, t)| algo.make_process(ProcId(i as u32), t.clone()))
        .collect();
    Machine::new(hw, procs)
}

/// Exhaustively explore every schedule of `program` under `algo` and
/// `hw`, checking each completed trace once per structural equivalence
/// class (see the module docs on deduplication). Use only for
/// litmus-sized programs (the schedule count is exponential).
pub fn check_all_traces(
    program: &Program,
    algo: &dyn TmAlgo,
    hw: HwModel,
    model: &dyn MemoryModel,
    kind: CheckKind,
    max_steps: usize,
) -> Verdict {
    check_all_traces_serial(program, algo, hw, model, kind, max_steps)
}

/// Parallel variant of [`check_all_traces`]: the serial exploration
/// cursor feeds deduplicated traces to `cfg.effective_threads()` scoped
/// checker workers sharing the verdict memo. Verdict and violating
/// trace are identical to the serial path (see module docs); falls back
/// to it outright when the effective thread count is 1.
pub fn check_all_traces_par(
    program: &Program,
    algo: &dyn TmAlgo,
    hw: HwModel,
    model: &dyn MemoryModel,
    kind: CheckKind,
    max_steps: usize,
    cfg: &ParallelConfig,
) -> Verdict {
    let threads = cfg.effective_threads();
    if threads <= 1 {
        return check_all_traces_serial(program, algo, hw, model, kind, max_steps);
    }

    let mut verdict = Verdict::passing();
    let memo = VerdictMemo::new();
    let (tx, rx) = mpsc::channel::<(u64, Trace)>();
    let rx = Mutex::new(rx);
    let violation: Mutex<Option<(u64, Trace)>> = Mutex::new(None);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut memo_hits = 0u64;
                    let mut checked = 0u64;
                    loop {
                        let msg = rx.lock().unwrap().recv();
                        let Ok((seq, trace)) = msg else { break };
                        // A violation earlier in exploration order has
                        // already decided everything from `seq` on.
                        if violation
                            .lock()
                            .unwrap()
                            .as_ref()
                            .is_some_and(|(vs, _)| *vs < seq)
                        {
                            continue;
                        }
                        checked += 1;
                        let (ok, hits) = trace_satisfies_memo(&trace, model, kind, Some(&memo));
                        memo_hits += hits;
                        if !ok {
                            let mut v = violation.lock().unwrap();
                            if v.as_ref().is_none_or(|(vs, _)| seq < *vs) {
                                *v = Some((seq, trace));
                                stop.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    (checked, memo_hits)
                })
            })
            .collect();

        // The producer: serial exploration cursor + dedup set.
        let mut seen: HashSet<u64> = HashSet::new();
        let mut seq = 0u64;
        let out = explore(
            || build_machine(program, algo, hw),
            max_steps,
            |r| {
                if stop.load(Ordering::Relaxed) {
                    return true; // a worker found a violation
                }
                if !r.completed {
                    return false;
                }
                verdict.tm.absorb(&tm_counts_from_trace(&r.trace));
                if !seen.insert(r.trace.cache_key()) {
                    verdict.stats.dedup_hits += 1;
                    return false;
                }
                tx.send((seq, r.trace.clone())).ok();
                seq += 1;
                false
            },
        );
        drop(tx); // close the channel so idle workers exit

        for h in handles {
            let (checked, hits) = h.join().expect("checker worker panicked");
            verdict.stats.histories_checked += checked;
            verdict.stats.memo_hits += hits;
        }
        verdict.runs = out.runs;
        verdict.truncated = out.truncated;
        verdict.stats.schedules = out.runs as u64;
        verdict.stats.truncated = out.truncated as u64;
        verdict.stats.machine = out.stats;
    });

    verdict.stats.workers = threads as u64;
    if let Some((_, trace)) = violation.into_inner().unwrap() {
        verdict.ok = false;
        verdict.violation = Some(trace);
    }
    verdict
}

fn check_all_traces_serial(
    program: &Program,
    algo: &dyn TmAlgo,
    hw: HwModel,
    model: &dyn MemoryModel,
    kind: CheckKind,
    max_steps: usize,
) -> Verdict {
    let mut verdict = Verdict::passing();
    let memo = VerdictMemo::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut histories_checked = 0u64;
    let mut memo_hits = 0u64;
    let mut tm = TmSnapshot::default();
    let out = explore(
        || build_machine(program, algo, hw),
        max_steps,
        |r| {
            if !r.completed {
                return false; // counted by explore; skip checking prefixes
            }
            tm.absorb(&tm_counts_from_trace(&r.trace));
            if !seen.insert(r.trace.cache_key()) {
                verdict.stats.dedup_hits += 1;
                return false;
            }
            histories_checked += 1;
            let (ok, hits) = trace_satisfies_memo(&r.trace, model, kind, Some(&memo));
            memo_hits += hits;
            if !ok {
                verdict.ok = false;
                verdict.violation = Some(r.trace.clone());
                return true;
            }
            false
        },
    );
    verdict.runs = out.runs;
    verdict.truncated = out.truncated;
    verdict.stats.schedules = out.runs as u64;
    verdict.stats.truncated = out.truncated as u64;
    verdict.stats.histories_checked = histories_checked;
    verdict.stats.memo_hits = memo_hits;
    verdict.stats.machine = out.stats;
    verdict.tm = tm;
    verdict
}

/// Sample random schedules of `program` over the explicit seed range,
/// checking each completed trace. Two calls with equal [`SweepSeeds`]
/// replay byte-identical schedules.
pub fn check_random(
    program: &Program,
    algo: &dyn TmAlgo,
    hw: HwModel,
    model: &dyn MemoryModel,
    kind: CheckKind,
    seeds: SweepSeeds,
    max_steps: usize,
) -> Verdict {
    let mut verdict = Verdict::passing();
    let memo = VerdictMemo::new();
    let mut seen: HashSet<u64> = HashSet::new();
    for seed in seeds.iter() {
        // Alternate uniform and bursty schedules: uniform explores
        // diffuse interleavings, bursts hit the tight windows of the
        // Figure 5 constructions.
        let mut sched: Box<dyn Scheduler> = if seed % 2 == 0 {
            Box::new(RandomScheduler::new(seed))
        } else {
            Box::new(BurstyScheduler::new(seed))
        };
        let r = build_machine(program, algo, hw).run(sched.as_mut(), max_steps);
        verdict.runs += 1;
        verdict.stats.schedules += 1;
        verdict.stats.machine.absorb(&r.stats);
        if !r.completed {
            verdict.truncated += 1;
            verdict.stats.truncated += 1;
            continue;
        }
        verdict.tm.absorb(&tm_counts_from_trace(&r.trace));
        if !seen.insert(r.trace.cache_key()) {
            verdict.stats.dedup_hits += 1;
            continue;
        }
        verdict.stats.histories_checked += 1;
        let (ok, hits) = trace_satisfies_memo(&r.trace, model, kind, Some(&memo));
        verdict.stats.memo_hits += hits;
        if !ok {
            verdict.ok = false;
            verdict.violation = Some(r.trace);
            return verdict;
        }
    }
    verdict
}

/// Search random schedules over the explicit seed range for a trace
/// with **no** satisfying corresponding history (a violation witness).
/// Returns the first one found.
pub fn find_violation(
    program: &Program,
    algo: &dyn TmAlgo,
    hw: HwModel,
    model: &dyn MemoryModel,
    kind: CheckKind,
    seeds: SweepSeeds,
    max_steps: usize,
) -> Option<Trace> {
    check_random(program, algo, hw, model, kind, seeds, max_steps).violation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::{GlobalLockTm, SkipWriteTm};
    use crate::program::{Stmt, ThreadProg, TxOp};
    use jungle_core::ids::X;
    use jungle_core::model::{Relaxed, Sc};

    #[test]
    fn single_thread_global_lock_always_opaque() {
        let p = Program(vec![ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Read(X)]),
            Stmt::NtRead(X),
        ])]);
        let v = check_all_traces(
            &p,
            &GlobalLockTm,
            HwModel::Sc,
            &Sc,
            CheckKind::Opacity,
            1_000,
        );
        assert!(v.ok, "violation: {:?}", v.violation);
        assert_eq!(v.runs, 1); // single thread → single schedule
                               // Exploration stats are recorded alongside the verdict.
        assert_eq!(v.stats.schedules, 1);
        assert_eq!(v.stats.histories_checked, 1);
        assert!(v.stats.machine.steps > 0);
        assert_eq!(v.tm.commits, 1);
        assert_eq!(v.tm.txn_reads, 1);
        assert_eq!(v.tm.txn_writes, 1);
        assert_eq!(v.tm.nontxn_uninstrumented, 1); // global-lock reads are bare loads
    }

    #[test]
    fn skip_write_violates_even_single_threaded() {
        // Lemma 1's scenario: a committed transactional write followed
        // by an uninstrumented read of the same variable.
        let p = Program(vec![ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 5)]),
            Stmt::NtRead(X),
        ])]);
        let v = check_all_traces(
            &p,
            &SkipWriteTm,
            HwModel::Sc,
            &Relaxed,
            CheckKind::Opacity,
            1_000,
        );
        assert!(!v.ok);
        assert!(v.violation.is_some());
    }

    #[test]
    fn random_sampling_agrees_on_simple_case() {
        let p = Program(vec![ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 5)]),
            Stmt::NtRead(X),
        ])]);
        let good = check_random(
            &p,
            &GlobalLockTm,
            HwModel::Sc,
            &Sc,
            CheckKind::Opacity,
            SweepSeeds::new(0, 5),
            1_000,
        );
        assert!(good.ok);
        assert_eq!(good.runs, 5);
        let bad = find_violation(
            &p,
            &SkipWriteTm,
            HwModel::Sc,
            &Sc,
            CheckKind::Opacity,
            SweepSeeds::new(0, 5),
            1_000,
        );
        assert!(bad.is_some());
    }

    #[test]
    fn sweep_seeds_are_explicit_and_reproducible() {
        assert_eq!(
            SweepSeeds::new(7, 3).iter().collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        let p = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)]), Stmt::NtRead(X)]),
            ThreadProg(vec![Stmt::NtRead(X)]),
        ]);
        let run = |seeds| {
            check_random(
                &p,
                &GlobalLockTm,
                HwModel::Tso,
                &Sc,
                CheckKind::Opacity,
                seeds,
                2_000,
            )
        };
        let a = run(SweepSeeds::new(11, 6));
        let b = run(SweepSeeds::new(11, 6));
        assert_eq!(a.ok, b.ok);
        assert_eq!(a.stats.dedup_hits, b.stats.dedup_hits);
        assert_eq!(a.stats.machine.steps, b.stats.machine.steps);
    }

    #[test]
    fn parallel_exhaustive_matches_serial() {
        let two_thread = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)]), Stmt::NtRead(X)]),
            ThreadProg(vec![Stmt::NtRead(X)]),
        ]);
        for (algo, expect_ok) in [
            (&GlobalLockTm as &dyn TmAlgo, true),
            (&SkipWriteTm as &dyn TmAlgo, false),
        ] {
            let serial = check_all_traces(
                &two_thread,
                algo,
                HwModel::Tso,
                &Sc,
                CheckKind::Opacity,
                4_000,
            );
            assert_eq!(serial.ok, expect_ok);
            for threads in [2, 4] {
                let par = check_all_traces_par(
                    &two_thread,
                    algo,
                    HwModel::Tso,
                    &Sc,
                    CheckKind::Opacity,
                    4_000,
                    &ParallelConfig::with_threads(threads),
                );
                assert_eq!(par.ok, serial.ok, "threads={threads}");
                assert_eq!(par.workers(), threads as u64);
                assert_eq!(
                    par.violation.as_ref().map(|t| t.cache_key()),
                    serial.violation.as_ref().map(|t| t.cache_key()),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn dedup_skips_structurally_identical_traces() {
        // Two threads racing on the TSO simulator produce many
        // instruction interleavings that collapse to identical
        // operation structures.
        let p = Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)]), Stmt::NtRead(X)]),
            ThreadProg(vec![Stmt::NtRead(X)]),
        ]);
        let v = check_all_traces(
            &p,
            &GlobalLockTm,
            HwModel::Tso,
            &Sc,
            CheckKind::Opacity,
            4_000,
        );
        assert!(v.ok);
        assert!(
            v.dedup_hits() > 0,
            "expected duplicate traces: {:?}",
            v.stats
        );
        // Dedup means strictly fewer checker invocations than schedules.
        assert!(v.stats.histories_checked + v.stats.dedup_hits <= v.stats.schedules);
        assert_eq!(v.workers(), 0); // serial sweep
    }
}
