//! # jungle-mc — model checking TM algorithms on simulated hardware
//!
//! This crate closes the loop between the paper's formal results (§5)
//! and executable code: it implements the TM algorithms the paper
//! constructs — as *interpreters* compiled to reactive
//! [`Process`](jungle_memsim::Process)es on the `jungle-memsim`
//! multiprocessor — runs them under exhaustive or randomized schedules,
//! extracts the recorded traces, and decides with the `jungle-core`
//! checkers whether **some corresponding history** satisfies
//! parametrized opacity (or SGLA) — exactly the paper's definition of a
//! TM implementation guaranteeing the property.
//!
//! The bundled algorithms:
//!
//! * [`algos::GlobalLockTm`] — Figure 6: the uninstrumented global-lock
//!   TM (Theorem 3: parametrized opacity for fully relaxed models;
//!   Theorem 7: SGLA for *every* model).
//! * [`algos::WriteTxnTm`] — Theorem 4: non-transactional writes become
//!   single-operation transactions; reads stay uninstrumented.
//! * [`algos::VersionedTm`] — Theorem 5: constant-time write
//!   instrumentation via per-process version numbers packed into the
//!   data word; reads stay plain loads.
//! * [`algos::NaiveStoreTm`] — a deliberately *wrong* uninstrumented TM
//!   that updates with plain stores, violating the necessity argument of
//!   Theorem 2.
//! * [`algos::SkipWriteTm`] — a deliberately wrong TM that never
//!   publishes transactional writes, violating Lemma 1.
//!
//! The [`theorems`] module packages each of the paper's results as a
//! checkable experiment; `tests/theorems.rs` at the workspace root runs
//! them all.

#![warn(missing_docs)]

pub mod algos;
pub mod cost;
pub mod dpor;
pub mod explain;
pub mod layout;
pub mod obs;
pub mod program;
pub mod theorems;
pub mod verify;

pub use algos::{
    GlobalLockTm, LazyTl2Tm, NaiveStoreTm, SkipWriteTm, StrongTm, TmAlgo, VersionedTm, WriteTxnTm,
};
pub use dpor::{explore_dpor, explore_dpor_par, DporCursor, DporOutcome};
pub use explain::{explain_experiment, explain_history, explain_trace, Explanation, TheoremClass};
pub use jungle_core::encode::CheckBackend;
pub use jungle_core::registry::{entry, registry, ExecSemantics, ModelEntry, StoreDiscipline};
pub use program::{Program, Stmt, ThreadProg, TxOp};
pub use theorems::{experiment_by_id, experiment_ids, thm1_suite, Expectation, Experiment};
pub use verify::{
    check_all_traces, check_all_traces_backend, check_all_traces_enumerative, check_all_traces_par,
    check_all_traces_shared, check_all_traces_shared_backend, check_random, check_random_par,
    check_random_shared, class_sweep_dpor, class_sweep_enumerative, find_violation,
    find_violation_par, machine_for, scheduler_for_seed, trace_satisfies, trace_satisfies_backend,
    CheckKind, ClassSweep, SharedVerdictMemo, SweepSeeds, Verdict,
};
