//! Counterexample explainer: turn a violating trace into a narrative.
//!
//! The negative experiments ([`crate::theorems`]) end with "a violating
//! trace exists" — a trace none of whose corresponding histories
//! satisfies the property. This module explains *why*, in the paper's
//! own vocabulary:
//!
//! 1. an ASCII **timeline** of the representative (canonical)
//!    corresponding history, one row per process;
//! 2. the **irreconcilable pair**: the single required view ordering
//!    `i ≺ j` whose removal would make the history pass — found by
//!    re-running the checker under a [`MemoryModel`] wrapper that masks
//!    exactly one required edge;
//! 3. the **Theorem 1 class** the shape matches (`Mrr`/`Mrw`/`Mwr`/
//!    `Mww`), read off the masked pair's (read/write, read/write)
//!    kinds;
//! 4. the per-process **views** `v(p)` (the model's required orderings
//!    over each process's non-transactional operations), and the greedy
//!    stuck-prefix diagnosis from
//!    [`jungle_core::explain::explain_opacity`].
//!
//! The explainer works on the *canonical* corresponding history — the
//! linearize-at-response order. Any corresponding history of a
//! violating trace fails, so the canonical one is a faithful (and
//! reproducible) representative. Classification needs a single masked
//! edge to flip the verdict; when no single edge does (a violation that
//! is over-determined), the explainer falls back to masking a whole
//! reorder class at a time.

use crate::theorems::Experiment;
use crate::verify::{find_violation, CheckKind, SweepSeeds};
use jungle_core::classes::ClassSet;
use jungle_core::explain::explain_opacity;
use jungle_core::history::History;
use jungle_core::ids::ProcId;
use jungle_core::model::MemoryModel;
use jungle_core::opacity::check_opacity;
use jungle_core::pretty::render_timeline;
use jungle_core::sgla::check_sgla;
use jungle_isa::trace::Trace;

/// The four reorder-restriction classes of Theorem 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TheoremClass {
    /// Read-read restrictive (`M ∈ Mrr`) — Figure 5(b).
    Mrr,
    /// Read-write restrictive (`M ∈ Mrw`) — Figure 5(d).
    Mrw,
    /// Write-read restrictive (`M ∈ Mwr`) — Figure 5(c).
    Mwr,
    /// Write-write restrictive (`M ∈ Mww`).
    Mww,
}

impl TheoremClass {
    /// The class for a required pair whose earlier op is a read iff
    /// `i_read`, later op a read iff `j_read`.
    fn of_pair(i_read: bool, j_read: bool) -> TheoremClass {
        match (i_read, j_read) {
            (true, true) => TheoremClass::Mrr,
            (true, false) => TheoremClass::Mrw,
            (false, true) => TheoremClass::Mwr,
            (false, false) => TheoremClass::Mww,
        }
    }

    /// Paper-style name, e.g. `"Mrr"`.
    pub fn name(self) -> &'static str {
        match self {
            TheoremClass::Mrr => "Mrr",
            TheoremClass::Mrw => "Mrw",
            TheoremClass::Mwr => "Mwr",
            TheoremClass::Mww => "Mww",
        }
    }

    /// Longhand description.
    pub fn describe(self) -> &'static str {
        match self {
            TheoremClass::Mrr => "read-read restrictive",
            TheoremClass::Mrw => "read-write restrictive",
            TheoremClass::Mwr => "write-read restrictive",
            TheoremClass::Mww => "write-write restrictive",
        }
    }
}

impl std::fmt::Display for TheoremClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured explanation of one counterexample.
#[derive(Debug)]
pub struct Explanation {
    /// Model that parametrized the violated property.
    pub model: &'static str,
    /// The violated property.
    pub kind: CheckKind,
    /// Theorem 1 construction class the shape matches, when a masking
    /// pass could isolate it.
    pub class: Option<TheoremClass>,
    /// The irreconcilable required ordering, as (process, earlier op,
    /// later op) rendered text — the single view edge whose removal
    /// makes the history pass.
    pub pair: Option<(ProcId, String, String)>,
    /// ASCII timeline of the explained history (one row per process).
    pub timeline: String,
    /// Per-process views `v(p)`: the model's required orderings over
    /// each process's non-transactional operations.
    pub views: Vec<(ProcId, String)>,
    /// Greedy stuck-prefix diagnosis (opacity only; empty for SGLA).
    pub diagnosis: String,
}

impl Explanation {
    /// Render the full narrative.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "counterexample to {} parametrized by {}\n",
            match self.kind {
                CheckKind::Opacity => "opacity",
                CheckKind::Sgla => "SGLA",
            },
            self.model
        ));
        out.push_str(&self.timeline);
        for (p, v) in &self.views {
            out.push_str(&format!("view v({p}): {v}\n"));
        }
        match (&self.pair, self.class) {
            (Some((p, a, b)), Some(c)) => {
                out.push_str(&format!(
                    "irreconcilable pair: {p} requires {a} ≺ {b} in every view, \
                     but no witness order can honor it\n"
                ));
                out.push_str(&format!(
                    "shape matches Theorem 1 class {c} ({})\n",
                    c.describe()
                ));
            }
            (None, Some(c)) => out.push_str(&format!(
                "no single view edge explains the violation; \
                 relaxing the whole {c} class ({}) makes it pass\n",
                c.describe()
            )),
            _ => out.push_str(
                "violation is not explained by the model's view orderings \
                 (legality failure; see diagnosis)\n",
            ),
        }
        if !self.diagnosis.is_empty() {
            out.push_str(&self.diagnosis);
        }
        out
    }
}

/// A model wrapper that drops the required edges selected by `mask`
/// (given transformed-history indices) and otherwise behaves as
/// `inner`.
struct MaskedModel<'a, F: Fn(&History, usize, usize) -> bool + Sync> {
    inner: &'a dyn MemoryModel,
    mask: F,
}

impl<F: Fn(&History, usize, usize) -> bool + Sync> MemoryModel for MaskedModel<'_, F> {
    fn name(&self) -> &'static str {
        "masked"
    }

    fn transform(&self, h: &History) -> History {
        self.inner.transform(h)
    }

    fn required(&self, h: &History, i: usize, j: usize) -> bool {
        if (self.mask)(h, i, j) {
            return false;
        }
        self.inner.required(h, i, j)
    }

    fn classes(&self) -> ClassSet {
        self.inner.classes()
    }
}

fn passes(h: &History, model: &dyn MemoryModel, kind: CheckKind) -> bool {
    match kind {
        CheckKind::Opacity => check_opacity(h, model).is_opaque(),
        CheckKind::Sgla => check_sgla(h, model).is_sgla(),
    }
}

/// Is transformed-history index `i` a non-transactional object command?
fn is_nt_cmd(th: &History, i: usize) -> bool {
    !th.is_transactional(i) && th.ops()[i].op.command().is_some()
}

/// The candidate maskable pairs: same-process, different-variable,
/// non-transactional command pairs the model actually requires — the
/// pairs whose orderings define the §3.2 classes. (Same-variable pairs
/// are program order per location, required by every model; dropping
/// one would not be a statement about `M`.)
fn candidate_pairs(th: &History, model: &dyn MemoryModel) -> Vec<(usize, usize)> {
    let ops = th.ops();
    let mut out = Vec::new();
    for i in 0..th.len() {
        if !is_nt_cmd(th, i) {
            continue;
        }
        for j in (i + 1)..th.len() {
            if !is_nt_cmd(th, j) || ops[i].proc != ops[j].proc {
                continue;
            }
            let (ci, cj) = (ops[i].op.command().unwrap(), ops[j].op.command().unwrap());
            if ci.var() == cj.var() {
                continue;
            }
            if model.required(th, i, j) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Explain why `h` violates `kind` parametrized by `model`.
///
/// If `h` actually satisfies the property the explanation degenerates
/// (no pair, no class, empty diagnosis) — callers normally hold a
/// violating history from [`find_violation`] or an experiment.
pub fn explain_history(h: &History, model: &dyn MemoryModel, kind: CheckKind) -> Explanation {
    let th = model.transform(h);
    let ops = th.ops();
    let mut explanation = Explanation {
        model: model.name(),
        kind,
        class: None,
        pair: None,
        timeline: render_timeline(&th),
        views: views_of(&th, model),
        diagnosis: String::new(),
    };
    if passes(h, model, kind) {
        return explanation;
    }
    if kind == CheckKind::Opacity {
        explanation.diagnosis = explain_opacity(h, model).render(&th);
    }

    // Single-edge masking: the first (in history order) required pair
    // whose removal flips the verdict is the irreconcilable ordering.
    let candidates = candidate_pairs(&th, model);
    for &(i, j) in &candidates {
        let masked = MaskedModel {
            inner: model,
            mask: move |_: &History, a: usize, b: usize| (a, b) == (i, j),
        };
        if passes(h, &masked, kind) {
            let (ci, cj) = (ops[i].op.command().unwrap(), ops[j].op.command().unwrap());
            explanation.class = Some(TheoremClass::of_pair(ci.is_read(), cj.is_read()));
            explanation.pair = Some((ops[i].proc, ci.to_string(), cj.to_string()));
            return explanation;
        }
    }

    // Over-determined violation: mask a whole reorder class at a time.
    for class in [
        TheoremClass::Mrr,
        TheoremClass::Mrw,
        TheoremClass::Mwr,
        TheoremClass::Mww,
    ] {
        let masked = MaskedModel {
            inner: model,
            mask: move |th: &History, a: usize, b: usize| {
                if !is_nt_cmd(th, a) || !is_nt_cmd(th, b) {
                    return false;
                }
                let (ca, cb) = (
                    th.ops()[a].op.command().unwrap(),
                    th.ops()[b].op.command().unwrap(),
                );
                ca.var() != cb.var() && TheoremClass::of_pair(ca.is_read(), cb.is_read()) == class
            },
        };
        if passes(h, &masked, kind) {
            explanation.class = Some(class);
            return explanation;
        }
    }
    explanation
}

/// Explain why `trace` violates `kind` parametrized by `model`, using
/// its canonical corresponding history as the representative (any
/// corresponding history of a violating trace fails; the canonical one
/// is reproducible). Errors if the trace has no well-formed canonical
/// history.
pub fn explain_trace(
    trace: &Trace,
    model: &dyn MemoryModel,
    kind: CheckKind,
) -> Result<Explanation, String> {
    let h = trace
        .canonical_history()
        .map_err(|e| format!("trace has no canonical history: {e:?}"))?;
    Ok(explain_history(&h, model, kind))
}

/// Run a negative experiment's violation search and explain the first
/// violating trace found. `None` when no violation shows up within the
/// seed budget (e.g. a positive experiment).
pub fn explain_experiment(
    exp: &Experiment,
    seeds: SweepSeeds,
    max_steps: usize,
) -> Option<Explanation> {
    let trace = find_violation(
        &exp.program,
        exp.algo,
        &exp.entry,
        exp.kind,
        seeds,
        max_steps,
    )?;
    explain_trace(&trace, exp.entry.model, exp.kind).ok()
}

/// Render each process's view `v(p)`: the chain of the model's required
/// orderings over that process's non-transactional operations.
fn views_of(th: &History, model: &dyn MemoryModel) -> Vec<(ProcId, String)> {
    let ops = th.ops();
    let mut out: Vec<(ProcId, String)> = Vec::new();
    for p in th.procs() {
        let idxs: Vec<usize> = (0..th.len())
            .filter(|&i| ops[i].proc == p && is_nt_cmd(th, i))
            .collect();
        if idxs.is_empty() {
            continue;
        }
        let mut parts: Vec<String> = Vec::new();
        for w in 0..idxs.len() {
            let i = idxs[w];
            let sep = if w + 1 < idxs.len() {
                if model.required(th, i, idxs[w + 1]) {
                    " ≺ "
                } else {
                    " ∥ "
                }
            } else {
                ""
            };
            parts.push(format!("{}{sep}", ops[i].op));
        }
        out.push((p, parts.concat()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorems::{thm1_case1, thm1_case2, thm1_case3, thm1_case4};
    use jungle_core::model::{Pso, Sc, Tso};

    fn classify(exp: &Experiment) -> Explanation {
        explain_experiment(exp, SweepSeeds::new(0, 2_000), 8_000)
            .expect("theorem 1 construction must produce a violating trace")
    }

    #[test]
    fn thm1_case1_classifies_as_mrr() {
        let e = classify(&thm1_case1(&Sc));
        assert_eq!(e.class, Some(TheoremClass::Mrr), "{}", e.render());
        assert!(e.pair.is_some(), "{}", e.render());
    }

    #[test]
    fn thm1_case2_classifies_as_mwr() {
        let e = classify(&thm1_case2(&Sc));
        assert_eq!(e.class, Some(TheoremClass::Mwr), "{}", e.render());
    }

    #[test]
    fn thm1_case3_classifies_as_mrw() {
        let e = classify(&thm1_case3(&Pso));
        assert_eq!(e.class, Some(TheoremClass::Mrw), "{}", e.render());
    }

    #[test]
    fn thm1_case4_classifies_as_mww() {
        let e = classify(&thm1_case4(&Tso));
        assert_eq!(e.class, Some(TheoremClass::Mww), "{}", e.render());
    }

    #[test]
    fn render_names_the_model_and_draws_the_timeline() {
        let e = classify(&thm1_case1(&Sc));
        let text = e.render();
        assert!(text.contains("parametrized by SC"), "{text}");
        assert!(text.contains("p0 |"), "{text}");
        assert!(text.contains("p1 |"), "{text}");
        assert!(text.contains("view v(p1)"), "{text}");
        assert!(text.contains("Mrr"), "{text}");
    }

    #[test]
    fn passing_history_degenerates() {
        use jungle_core::builder::HistoryBuilder;
        use jungle_core::ids::{ProcId, X};
        let mut b = HistoryBuilder::new();
        b.start(ProcId(1));
        b.write(ProcId(1), X, 1);
        b.commit(ProcId(1));
        b.read(ProcId(2), X, 1);
        let h = b.build().unwrap();
        let e = explain_history(&h, &Sc, CheckKind::Opacity);
        assert_eq!(e.class, None);
        assert_eq!(e.pair, None);
        assert!(e.diagnosis.is_empty());
    }
}
