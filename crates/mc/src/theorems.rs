//! The paper's results (§5, §6.2) packaged as checkable experiments.
//!
//! Each function returns an [`Experiment`] bundling the program, the TM
//! algorithm, the memory model, and the *expected* outcome; `run` checks
//! it on the simulator. The workspace-level `tests/theorems.rs` runs
//! every experiment; the `jungle-bench` crate measures their cost.
//!
//! Negative results (Lemma 1, Theorems 1 and 2) are demonstrated by
//! *finding a violating trace* — a schedule under which no corresponding
//! history satisfies the property. Positive results (Theorems 3, 4, 5
//! and 7) are demonstrated by exhaustive exploration of litmus-sized
//! programs plus randomized sweeps over generated programs.

use crate::algos::{
    GlobalLockTm, LazyTl2Tm, NaiveStoreTm, SkipWriteTm, StrongTm, TmAlgo, VersionedTm, WriteTxnTm,
};
use crate::program::{generate, GenConfig, Program, Stmt, ThreadProg, TxOp};
use crate::verify::{
    check_all_traces, check_all_traces_shared, check_random, check_random_shared, CheckKind,
    SharedVerdictMemo, SweepSeeds,
};
use jungle_core::ids::{X, Y};
use jungle_core::model::{Alpha, MemoryModel, Pso, Relaxed, Sc, Tso};
use jungle_core::par::ParallelConfig;
use jungle_core::registry::{registry, ModelEntry};
use jungle_obs::{DporStats, McStats, TmSnapshot};

/// How an experiment establishes its claim.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// A violating trace must exist (impossibility construction).
    ViolationExists,
    /// Every explored trace must satisfy the property.
    AllTracesSatisfy,
}

/// One checkable experiment derived from a paper result.
pub struct Experiment {
    /// Identifier, e.g. `"thm1-case1/SC"`.
    pub id: String,
    /// The paper artifact it reproduces.
    pub paper_ref: &'static str,
    /// The multiprocess program.
    pub program: Program,
    /// The TM algorithm under test.
    pub algo: &'static dyn TmAlgo,
    /// The registry entry pairing the memory model that parametrizes
    /// the property with the execution semantics the machine runs
    /// under. The paper's fixed constructions use
    /// [`ModelEntry::checker_game`] — SC execution, varying checker —
    /// which is exactly the paper's setting (the constructions place
    /// instructions by hand; the *model* decides which placements need
    /// explaining).
    pub entry: ModelEntry,
    /// Opacity or SGLA.
    pub kind: CheckKind,
    /// Expected outcome.
    pub expect: Expectation,
    /// Use exhaustive schedule exploration (otherwise random seeds).
    pub exhaustive: bool,
}

/// Result of running an experiment.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Did the observed outcome match the expectation?
    pub passed: bool,
    /// Human-readable detail.
    pub detail: String,
    /// Exploration counters from the underlying verification.
    pub stats: McStats,
    /// TM runtime counters aggregated over every checked trace.
    pub tm: TmSnapshot,
    /// DPOR waste attribution from the underlying verification (empty
    /// for randomized sweeps; `waste.blocked == stats.dpor_blocked`).
    pub waste: DporStats,
}

impl Experiment {
    /// The memory model parametrizing the property.
    pub fn model(&self) -> &'static dyn MemoryModel {
        self.entry.model
    }

    /// Run the experiment with the default parallel configuration (auto
    /// thread count for exhaustive exploration, serial below the size
    /// threshold) and a private verdict memo.
    pub fn run(&self, seeds: SweepSeeds, max_steps: usize) -> ExperimentResult {
        self.run_with(seeds, max_steps, &ParallelConfig::default())
    }

    /// [`Experiment::run`] with an explicit parallel configuration. The
    /// verdict is deterministic — identical for every thread count and
    /// fully determined by the explicit `seeds` on the randomized paths.
    pub fn run_with(
        &self,
        seeds: SweepSeeds,
        max_steps: usize,
        cfg: &ParallelConfig,
    ) -> ExperimentResult {
        self.run_shared(seeds, max_steps, cfg, &SharedVerdictMemo::new())
    }

    /// [`Experiment::run_with`] with a caller-owned [`SharedVerdictMemo`]
    /// shared across experiments: many of the paper's constructions
    /// reuse the same litmus programs under the same models, so a
    /// report run over the whole suite answers repeated per-history
    /// verdicts from the memo.
    pub fn run_shared(
        &self,
        seeds: SweepSeeds,
        max_steps: usize,
        cfg: &ParallelConfig,
        memo: &SharedVerdictMemo,
    ) -> ExperimentResult {
        match self.expect {
            Expectation::ViolationExists => {
                let v = check_random_shared(
                    &self.program,
                    self.algo,
                    &self.entry,
                    self.kind,
                    seeds,
                    max_steps,
                    cfg,
                    memo,
                );
                ExperimentResult {
                    passed: v.violation.is_some(),
                    detail: match v.violation {
                        Some(_) => format!("{}: violating trace found as expected", self.id),
                        None => format!(
                            "{}: no violating trace in {} random schedules",
                            self.id, seeds.runs
                        ),
                    },
                    stats: v.stats,
                    tm: v.tm,
                    waste: v.waste,
                }
            }
            Expectation::AllTracesSatisfy => {
                let v = if self.exhaustive {
                    check_all_traces_shared(
                        &self.program,
                        self.algo,
                        &self.entry,
                        self.kind,
                        max_steps,
                        cfg,
                        memo,
                    )
                } else {
                    check_random_shared(
                        &self.program,
                        self.algo,
                        &self.entry,
                        self.kind,
                        seeds,
                        max_steps,
                        cfg,
                        memo,
                    )
                };
                ExperimentResult {
                    passed: v.ok,
                    detail: if v.ok {
                        format!("{}: {} runs all satisfied", self.id, v.runs)
                    } else {
                        format!("{}: violation found:\n{:?}", self.id, v.violation)
                    },
                    stats: v.stats,
                    tm: v.tm,
                    waste: v.waste,
                }
            }
        }
    }
}

/// Lemma 1: a committed writing transaction must issue an update
/// instruction — [`SkipWriteTm`] (which issues none) has a violating
/// trace even single-threaded, for *every* memory model.
pub fn lemma1() -> Experiment {
    Experiment {
        id: "lemma1".into(),
        paper_ref: "Lemma 1 / Figure 5(a)",
        program: Program(vec![ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 5)]),
            Stmt::NtRead(X),
        ])]),
        algo: &SkipWriteTm,
        entry: ModelEntry::checker_game(&Relaxed),
        kind: CheckKind::Opacity,
        expect: Expectation::ViolationExists,
        exhaustive: false,
    }
}

/// Theorem 1, case 1 (`M ∈ Mrr`): the Figure 5(b) construction. The
/// transaction commits `x` and `y` with two separate updates; the other
/// process's uninstrumented reads can land between them, and read-read
/// restrictive models forbid explaining the result.
pub fn thm1_case1(model: &'static dyn MemoryModel) -> Experiment {
    Experiment {
        id: format!("thm1-case1/{}", model.name()),
        paper_ref: "Theorem 1 case 1 / Figure 5(b)",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
        ]),
        algo: &GlobalLockTm,
        entry: ModelEntry::checker_game(model),
        kind: CheckKind::Opacity,
        expect: Expectation::ViolationExists,
        exhaustive: false,
    }
}

/// Theorem 1, case 2 (`M ∈ Mwr`): the Figure 5(c) construction. The
/// other process writes `x` then reads `y`; both land between the
/// transaction's read of `x` and its update of `y`.
pub fn thm1_case2(model: &'static dyn MemoryModel) -> Experiment {
    Experiment {
        id: format!("thm1-case2/{}", model.name()),
        paper_ref: "Theorem 1 case 2 / Figure 5(c)",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Read(X), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtWrite(X, 3), Stmt::NtRead(Y)]),
        ]),
        algo: &GlobalLockTm,
        entry: ModelEntry::checker_game(model),
        kind: CheckKind::Opacity,
        expect: Expectation::ViolationExists,
        exhaustive: false,
    }
}

/// Theorem 1, case 3 (`M ∈ Mrw`): the Figure 5(d) construction. The
/// other process reads `x`, then writes and restores `y`, all between
/// the transaction's two updates; afterwards it re-reads both.
pub fn thm1_case3(model: &'static dyn MemoryModel) -> Experiment {
    Experiment {
        id: format!("thm1-case3/{}", model.name()),
        paper_ref: "Theorem 1 case 3 / Figure 5(d)",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![
                Stmt::NtRead(X),
                Stmt::NtWrite(Y, 4),
                Stmt::NtWrite(Y, 0),
                Stmt::txn(vec![]),
                Stmt::NtRead(X),
                Stmt::NtRead(Y),
            ]),
        ]),
        algo: &GlobalLockTm,
        entry: ModelEntry::checker_game(model),
        kind: CheckKind::Opacity,
        expect: Expectation::ViolationExists,
        exhaustive: false,
    }
}

/// Theorem 1, case 4 (`M ∈ Mww`): the Figure 5(e)-adjacent construction
/// with two writes by the other process.
pub fn thm1_case4(model: &'static dyn MemoryModel) -> Experiment {
    Experiment {
        id: format!("thm1-case4/{}", model.name()),
        paper_ref: "Theorem 1 case 4",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![
                TxOp::Read(X),
                TxOp::Read(Y),
                TxOp::Write(X, 3),
                TxOp::Write(Y, 4),
            ])]),
            ThreadProg(vec![
                Stmt::NtWrite(X, 5),
                Stmt::NtWrite(Y, 6),
                Stmt::NtWrite(Y, 0),
                Stmt::txn(vec![]),
                Stmt::NtRead(X),
                Stmt::NtRead(Y),
            ]),
        ]),
        algo: &GlobalLockTm,
        entry: ModelEntry::checker_game(model),
        kind: CheckKind::Opacity,
        expect: Expectation::ViolationExists,
        exhaustive: false,
    }
}

/// Theorem 2: updating a read-and-written variable with a plain store
/// instead of CAS ([`NaiveStoreTm`]) admits a violating trace for every
/// memory model — Figure 5(e).
pub fn thm2() -> Experiment {
    Experiment {
        id: "thm2".into(),
        paper_ref: "Theorem 2 / Figure 5(e)",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Read(X), TxOp::Write(X, 7)])]),
            ThreadProg(vec![
                Stmt::NtWrite(X, 3),
                Stmt::NtRead(X),
                Stmt::txn(vec![]),
                Stmt::NtRead(X),
            ]),
        ]),
        algo: &NaiveStoreTm,
        entry: ModelEntry::checker_game(&Relaxed),
        kind: CheckKind::Opacity,
        expect: Expectation::ViolationExists,
        exhaustive: false,
    }
}

/// Theorem 3 (litmus form): the global-lock TM of Figure 6 guarantees
/// opacity parametrized by the fully relaxed model; exhaustively
/// checked on a fixed two-thread program.
pub fn thm3_litmus() -> Experiment {
    Experiment {
        id: "thm3-litmus".into(),
        paper_ref: "Theorem 3 / Figure 6",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
        ]),
        algo: &GlobalLockTm,
        entry: ModelEntry::checker_game(&Relaxed),
        kind: CheckKind::Opacity,
        expect: Expectation::AllTracesSatisfy,
        exhaustive: true,
    }
}

/// Theorem 4 (litmus form): writes-as-transactions, reads plain; opaque
/// for `M ∉ Mrr` (checked against Alpha).
pub fn thm4_litmus() -> Experiment {
    Experiment {
        id: "thm4-litmus".into(),
        paper_ref: "Theorem 4",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtWrite(X, 3), Stmt::NtRead(Y), Stmt::NtRead(X)]),
        ]),
        algo: &WriteTxnTm,
        entry: ModelEntry::checker_game(&Alpha),
        kind: CheckKind::Opacity,
        expect: Expectation::AllTracesSatisfy,
        exhaustive: false, // lock spinning makes the schedule space unbounded
    }
}

/// Theorem 5 (litmus form): constant-time write instrumentation; opaque
/// for `M ∉ Mrr ∪ Mwr` (checked against Alpha).
pub fn thm5_litmus() -> Experiment {
    Experiment {
        id: "thm5-litmus".into(),
        paper_ref: "Theorem 5",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtWrite(X, 3), Stmt::NtRead(Y), Stmt::NtRead(X)]),
        ]),
        algo: &VersionedTm,
        entry: ModelEntry::checker_game(&Alpha),
        kind: CheckKind::Opacity,
        expect: Expectation::AllTracesSatisfy,
        // Exhaustive exploration of this program visits ~800k schedules
        // (minutes); randomized sampling covers it in milliseconds. The
        // exhaustive run is still reachable by flipping the flag.
        exhaustive: false,
    }
}

/// Tightness of Theorem 5: the same TM is *not* opaque for a read-read
/// restrictive model (its reads are uninstrumented) — the Figure 5(b)
/// window reappears under SC.
pub fn thm5_tightness() -> Experiment {
    Experiment {
        id: "thm5-tightness/SC".into(),
        paper_ref: "Theorem 5 (necessity of M ∉ Mrr)",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
        ]),
        algo: &VersionedTm,
        entry: ModelEntry::checker_game(&Sc),
        kind: CheckKind::Opacity,
        expect: Expectation::ViolationExists,
        exhaustive: false,
    }
}

/// Theorem 7 (litmus form): the global-lock TM guarantees SGLA for
/// every memory model — exhaustively checked against SC, the strongest.
pub fn thm7_litmus(model: &'static dyn MemoryModel) -> Experiment {
    Experiment {
        id: format!("thm7-litmus/{}", model.name()),
        paper_ref: "Theorem 7",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
        ]),
        algo: &GlobalLockTm,
        entry: ModelEntry::checker_game(model),
        kind: CheckKind::Sgla,
        expect: Expectation::AllTracesSatisfy,
        exhaustive: true,
    }
}

/// The privatization idiom (§1's motivating scenario) as a program:
/// the worker updates the datum only while the flag is up; the
/// privatizer lowers the flag transactionally and then uses plain
/// accesses on the datum.
pub fn privatization_program() -> Program {
    use jungle_core::ids::{X, Y};
    // Y = flag (initially published by an unconditional write), X = data.
    Program(vec![
        // Worker: publish the flag, then conditionally update the datum.
        ThreadProg(vec![
            Stmt::NtWrite(Y, 1),
            Stmt::TxnGuard {
                guard: Y,
                expect: 1,
                ops: vec![TxOp::Write(X, 7)],
            },
        ]),
        // Privatizer: wait-free lowering of the flag, then plain access.
        ThreadProg(vec![
            Stmt::txn(vec![TxOp::Read(Y), TxOp::Write(Y, 0)]),
            Stmt::NtWrite(X, 100),
            Stmt::NtRead(X),
        ]),
    ])
}

/// §1 motivation, negative side: the lazy TL2-style weakly atomic TM
/// admits a schedule where the worker's write-back lands *after*
/// privatization, clobbering the plain write — and no memory model
/// explains the resulting history.
pub fn privatization_unsafe_lazy_tl2() -> Experiment {
    Experiment {
        id: "privatization/lazy-tl2".into(),
        paper_ref: "§1 privatization motivation (delayed write-back)",
        program: privatization_program(),
        algo: &LazyTl2Tm,
        entry: ModelEntry::checker_game(&Relaxed),
        kind: CheckKind::Opacity,
        expect: Expectation::ViolationExists,
        exhaustive: false,
    }
}

/// §1 motivation, positive side: the strong-atomicity TM keeps the
/// privatization idiom opaque parametrized by SC.
pub fn privatization_safe_strong() -> Experiment {
    static STRONG: StrongTm = StrongTm::new();
    Experiment {
        id: "privatization/strong".into(),
        paper_ref: "§6.1 strong atomicity on the §1 idiom",
        program: privatization_program(),
        algo: &STRONG,
        entry: ModelEntry::checker_game(&Sc),
        kind: CheckKind::Opacity,
        expect: Expectation::AllTracesSatisfy,
        exhaustive: false,
    }
}

/// And the Figure 6 TM keeps it SGLA under SC (it is not SC-opaque —
/// Theorem 1 — but the global lock serializes the write-back before
/// privatization can complete).
pub fn privatization_safe_global_lock() -> Experiment {
    Experiment {
        id: "privatization/global-lock".into(),
        paper_ref: "Theorem 7 on the §1 idiom",
        program: privatization_program(),
        algo: &GlobalLockTm,
        entry: ModelEntry::checker_game(&Sc),
        kind: CheckKind::Sgla,
        expect: Expectation::AllTracesSatisfy,
        exhaustive: false,
    }
}

/// §6.1 head-to-head: the fully instrumented strong TM is SC-opaque on
/// the Figure 1 program.
pub fn strong_sc_opaque_litmus() -> Experiment {
    static STRONG: StrongTm = StrongTm::new();
    Experiment {
        id: "strong-sc/fig1".into(),
        paper_ref: "§6.1 (Shpeisman et al.): strong atomicity = opacity ⊨ SC",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
        ]),
        algo: &STRONG,
        entry: ModelEntry::checker_game(&Sc),
        kind: CheckKind::Opacity,
        expect: Expectation::AllTracesSatisfy,
        // The record protocol's spin loops make exhaustive exploration
        // intractable; randomized sampling covers it.
        exhaustive: false,
    }
}

/// §6.1 optimization: dropping the read instrumentation loses SC…
pub fn strong_optimized_not_sc() -> Experiment {
    static OPT: StrongTm = StrongTm::optimized();
    Experiment {
        id: "strong-optimized/not-SC".into(),
        paper_ref: "§6.1 read de-instrumentation: SC lost",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
        ]),
        algo: &OPT,
        entry: ModelEntry::checker_game(&Sc),
        kind: CheckKind::Opacity,
        expect: Expectation::ViolationExists,
        exhaustive: false,
    }
}

/// …but keeps opacity parametrized by Alpha (`M ∉ Mrr ∪ Mwr`).
pub fn strong_optimized_alpha_ok() -> Experiment {
    static OPT: StrongTm = StrongTm::optimized();
    Experiment {
        id: "strong-optimized/Alpha".into(),
        paper_ref: "§6.1 read de-instrumentation: correct for M ∉ Mrr ∪ Mwr",
        program: Program(vec![
            ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
            ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
        ]),
        algo: &OPT,
        entry: ModelEntry::checker_game(&Alpha),
        kind: CheckKind::Opacity,
        expect: Expectation::AllTracesSatisfy,
        exhaustive: false,
    }
}

/// All fixed-program experiments (negative constructions and litmus
/// positives) with models drawn from the matching restriction classes.
pub fn all_fixed_experiments() -> Vec<Experiment> {
    vec![
        lemma1(),
        thm1_case1(&Sc),
        thm1_case1(&Tso),
        thm1_case1(&Pso),
        thm1_case2(&Sc),
        thm1_case3(&Pso),
        thm1_case4(&Tso),
        thm2(),
        thm3_litmus(),
        thm4_litmus(),
        thm5_litmus(),
        thm5_tightness(),
        thm7_litmus(&Sc),
        thm7_litmus(&Relaxed),
        strong_sc_opaque_litmus(),
        strong_optimized_not_sc(),
        strong_optimized_alpha_ok(),
        privatization_unsafe_lazy_tl2(),
        privatization_safe_strong(),
        privatization_safe_global_lock(),
    ]
}

/// The four Theorem 1 constructions, each paired with the model whose
/// restriction-class membership makes the construction irreconcilable:
/// Mrr under SC, Mwr under SC, Mrw under PSO, Mww under TSO. This is
/// the suite `report --explain` narrates and `report --record`
/// captures.
pub fn thm1_suite() -> Vec<Experiment> {
    vec![
        thm1_case1(&Sc),
        thm1_case2(&Sc),
        thm1_case3(&Pso),
        thm1_case4(&Tso),
    ]
}

/// Look up a bundled fixed experiment by its `id` (e.g.
/// `"thm1-case1/SC"`). This is how `report --replay` resolves the
/// experiment a schedule log was recorded against back to a concrete
/// program/algorithm/model triple.
pub fn experiment_by_id(id: &str) -> Option<Experiment> {
    all_fixed_experiments().into_iter().find(|e| e.id == id)
}

/// The ids of every bundled fixed experiment, for error messages that
/// must list the valid keys.
pub fn experiment_ids() -> Vec<String> {
    all_fixed_experiments().into_iter().map(|e| e.id).collect()
}

/// Enumerate *all* two-thread programs where each thread runs one
/// statement drawn from a small grammar (non-transactional read/write
/// of x or y, or a one/two-operation committing transaction). Small-
/// scope exhaustive coverage complementing the random sweeps: if a
/// theorem fails on any tiny program, it fails here.
pub fn enumerate_small_programs() -> Vec<Program> {
    use jungle_core::ids::{X, Y};
    let mut stmts: Vec<Stmt> = Vec::new();
    for v in [X, Y] {
        stmts.push(Stmt::NtRead(v));
        stmts.push(Stmt::NtWrite(v, 41));
        stmts.push(Stmt::txn(vec![TxOp::Read(v)]));
        stmts.push(Stmt::txn(vec![TxOp::Write(v, 42)]));
    }
    stmts.push(Stmt::txn(vec![TxOp::Write(X, 43), TxOp::Write(Y, 44)]));
    stmts.push(Stmt::txn(vec![TxOp::Read(X), TxOp::Write(Y, 45)]));
    stmts.push(Stmt::aborting_txn(vec![TxOp::Write(X, 46)]));

    let mut out = Vec::new();
    for a in &stmts {
        for b in &stmts {
            out.push(Program(vec![
                ThreadProg(vec![a.clone()]),
                ThreadProg(vec![b.clone()]),
            ]));
        }
    }
    out
}

/// Exhaustively check every small program of
/// [`enumerate_small_programs`] under `algo`/`model`/`kind`, exploring
/// every schedule of each. Returns the number of (program, schedule)
/// pairs checked, or the first failing program.
pub fn small_scope_sweep(
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    max_steps: usize,
) -> Result<usize, String> {
    let mut runs = 0;
    for (i, program) in enumerate_small_programs().iter().enumerate() {
        // Two concurrent transactions contend on locks, whose spin
        // loops make the schedule space explode; sample those pairs
        // randomly and explore everything else exhaustively.
        let n_txns = program
            .0
            .iter()
            .flat_map(|t| t.0.iter())
            .filter(|s| matches!(s, Stmt::Txn { .. } | Stmt::TxnGuard { .. }))
            .count();
        let v = if n_txns >= 2 {
            check_random(
                program,
                algo,
                entry,
                kind,
                SweepSeeds::new(0, 60),
                max_steps,
            )
        } else {
            check_all_traces(program, algo, entry, kind, max_steps)
        };
        if !v.ok {
            return Err(format!(
                "small program #{i} failed under {}/{}: {:?}\nprogram: {:?}",
                algo.name(),
                entry.key,
                v.violation,
                program
            ));
        }
        runs += v.runs;
    }
    Ok(runs)
}

/// Randomized positive sweep: run `n_programs` generated programs under
/// `algo`, checking every sampled trace for the property under `model`.
/// Returns the id of the first failing program, if any.
pub fn random_sweep(
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
    n_programs: u64,
    seeds_per_program: u64,
    cfg: &GenConfig,
) -> Result<u64, String> {
    let mut checked = 0;
    for pseed in 0..n_programs {
        let program = generate(cfg, pseed);
        let v = check_random(
            &program,
            algo,
            entry,
            kind,
            SweepSeeds::new(0, seeds_per_program),
            20_000,
        );
        if !v.ok {
            return Err(format!(
                "program seed {pseed} under {} / {} violated {:?}:\nprogram: {:?}",
                algo.name(),
                entry.key,
                kind,
                program
            ));
        }
        checked += v.runs as u64;
    }
    Ok(checked)
}

/// One cell of the matched-model zoo: a TM algorithm sampled on the
/// execution semantics of a registry entry and checked against that
/// same entry's memory model.
#[derive(Debug)]
pub struct ZooVerdict {
    /// TM algorithm name.
    pub algo: &'static str,
    /// Registry key of the model (checker *and* execution side).
    pub model: &'static str,
    /// Did every sampled trace have a satisfying corresponding history?
    pub ok: bool,
    /// Exploration counters.
    pub stats: McStats,
    /// TM runtime counters.
    pub tm: TmSnapshot,
}

/// The matched-model zoo sweep: run the five positive-result STMs on the
/// Figure 1 program under **every** registry entry, executing each
/// entry's machine semantics and checking opacity parametrized by the
/// same entry's model. Unlike the fixed experiments (SC execution by
/// construction), this is the descriptive cross-validation table the
/// registry makes possible: relaxed execution widens the trace set and
/// the equally relaxed checker must still explain it. Verdicts are
/// reported, not asserted — the standing property test over exhaustive
/// small programs lives in `tests/registry_props.rs`.
pub fn matched_zoo(
    seeds: SweepSeeds,
    max_steps: usize,
    cfg: &ParallelConfig,
    memo: &SharedVerdictMemo,
) -> Vec<ZooVerdict> {
    static STRONG: StrongTm = StrongTm::new();
    let algos: [&'static dyn TmAlgo; 5] = [
        &GlobalLockTm,
        &WriteTxnTm,
        &VersionedTm,
        &STRONG,
        &LazyTl2Tm,
    ];
    let program = Program(vec![
        ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
        ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
    ]);
    let mut out = Vec::new();
    for algo in algos {
        for entry in registry() {
            let v = check_random_shared(
                &program,
                algo,
                entry,
                CheckKind::Opacity,
                seeds,
                max_steps,
                cfg,
                memo,
            );
            out.push(ZooVerdict {
                algo: algo.name(),
                model: entry.key,
                ok: v.ok,
                stats: v.stats,
                tm: v.tm,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Quick smoke versions of the experiments; the heavy sweeps live in
    // the workspace-level integration tests.

    #[test]
    fn lemma1_violation_found() {
        let r = lemma1().run(SweepSeeds::new(0, 5), 2_000);
        assert!(r.passed, "{}", r.detail);
    }

    #[test]
    fn thm1_case1_sc_violation_found() {
        let r = thm1_case1(&Sc).run(SweepSeeds::new(0, 800), 6_000);
        assert!(r.passed, "{}", r.detail);
    }

    #[test]
    fn thm2_violation_found() {
        let r = thm2().run(SweepSeeds::new(0, 600), 4_000);
        assert!(r.passed, "{}", r.detail);
    }

    #[test]
    fn thm3_litmus_holds() {
        let r = thm3_litmus().run(SweepSeeds::new(0, 0), 4_000);
        assert!(r.passed, "{}", r.detail);
    }

    #[test]
    fn thm5_litmus_random_subset_holds() {
        // The exhaustive version runs in the integration suite; sample
        // here to keep unit tests fast.
        let mut e = thm5_litmus();
        e.exhaustive = false;
        let r = e.run(SweepSeeds::new(0, 60), 20_000);
        assert!(r.passed, "{}", r.detail);
    }

    #[test]
    fn thm7_sgla_random_subset_holds() {
        let mut e = thm7_litmus(&Sc);
        e.exhaustive = false;
        let r = e.run(SweepSeeds::new(0, 60), 20_000);
        assert!(r.passed, "{}", r.detail);
    }

    #[test]
    fn experiment_lookup_by_id() {
        let e = experiment_by_id("thm1-case1/SC").expect("bundled id resolves");
        assert_eq!(e.id, "thm1-case1/SC");
        assert!(experiment_by_id("nonesuch").is_none());
        let ids = experiment_ids();
        assert_eq!(ids.len(), all_fixed_experiments().len());
        // Every thm1_suite experiment is resolvable by id.
        for e in thm1_suite() {
            assert!(ids.contains(&e.id), "{} not in fixed ids", e.id);
        }
    }

    #[test]
    fn random_sweep_smoke() {
        let cfg = GenConfig {
            max_stmts: 2,
            max_txn_ops: 2,
            ..GenConfig::default()
        };
        let checked = random_sweep(
            &GlobalLockTm,
            &ModelEntry::checker_game(&Relaxed),
            CheckKind::Opacity,
            4,
            6,
            &cfg,
        )
        .expect("global-lock TM must be opaque under the relaxed model");
        assert!(checked > 0);
    }
}
