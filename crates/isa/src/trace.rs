//! Traces and the correspondence between traces and histories (§4).
//!
//! A [`Trace`] is a sequence of instruction instances such that each
//! process's subsequence is a concatenation of *complete operation
//! traces* (`(., o) in₁ … inₘ (/, o)`), possibly ending in one
//! incomplete operation trace. A history **corresponds** to a trace when
//! every operation is assigned a linearization point between its
//! invocation and its response (operations whose intervals do not
//! overlap keep their order; overlapping operations may be ordered
//! either way). [`Trace::corresponding_histories`] enumerates all such
//! histories, and [`Trace::exists_corresponding`] is the early-exit form
//! used by the model checker to decide "∃ corresponding history that is
//! opaque" (the paper's definition of a TM implementation guaranteeing
//! parametrized opacity).

use crate::instr::{Instr, InstrInstance};
use jungle_core::history::{History, OpInstance};
use jungle_core::ids::{OpId, ProcId};
use jungle_core::op::Op;
use std::collections::HashMap;

/// Errors detected when validating a trace.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // field names are self-describing
pub enum TraceError {
    /// An instruction appears outside any operation (before its
    /// invocation marker or after its response).
    InstrOutsideOperation { proc: ProcId, op: OpId },
    /// An operation's instructions are interleaved with another
    /// operation of the same process.
    InterleavedOperations { proc: ProcId, op: OpId },
    /// Response without matching invocation, or mismatched operation.
    UnmatchedResponse { proc: ProcId, op: OpId },
    /// A second invocation for an operation id already used by the
    /// same process.
    DuplicateOperation { proc: ProcId, op: OpId },
    /// The resulting history is not well-formed.
    IllFormedHistory(String),
}

/// One operation as it appears in a trace: its identifier, operation,
/// process, and the trace positions of its first and last instruction
/// instances.
#[derive(Clone, Debug)]
pub struct TraceOp {
    /// Operation identifier.
    pub id: OpId,
    /// The operation (from its invocation marker).
    pub op: Op,
    /// Issuing process.
    pub proc: ProcId,
    /// Trace index of the invocation marker.
    pub first: usize,
    /// Trace index of the response marker, or of the last instruction
    /// if the operation trace is incomplete.
    pub last: usize,
    /// Whether the operation trace is complete (has a response).
    pub complete: bool,
}

/// A well-formed trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    instrs: Vec<InstrInstance>,
    ops: Vec<TraceOp>,
}

impl Trace {
    /// Validate and construct a trace from instruction instances.
    pub fn new(instrs: Vec<InstrInstance>) -> Result<Self, TraceError> {
        // Per-process currently open operation.
        let mut open: HashMap<ProcId, usize> = HashMap::new(); // proc -> index into ops
        let mut ops: Vec<TraceOp> = Vec::new();
        let mut seen: HashMap<(ProcId, OpId), ()> = HashMap::new();

        for (i, ii) in instrs.iter().enumerate() {
            match &ii.instr {
                Instr::Inv(op) => {
                    if open.contains_key(&ii.proc) {
                        return Err(TraceError::InterleavedOperations {
                            proc: ii.proc,
                            op: ii.op,
                        });
                    }
                    if seen.insert((ii.proc, ii.op), ()).is_some() {
                        return Err(TraceError::DuplicateOperation {
                            proc: ii.proc,
                            op: ii.op,
                        });
                    }
                    open.insert(ii.proc, ops.len());
                    ops.push(TraceOp {
                        id: ii.op,
                        op: op.clone(),
                        proc: ii.proc,
                        first: i,
                        last: i,
                        complete: false,
                    });
                }
                Instr::Resp(_) => {
                    let Some(oi) = open.remove(&ii.proc) else {
                        return Err(TraceError::UnmatchedResponse {
                            proc: ii.proc,
                            op: ii.op,
                        });
                    };
                    if ops[oi].id != ii.op {
                        return Err(TraceError::UnmatchedResponse {
                            proc: ii.proc,
                            op: ii.op,
                        });
                    }
                    ops[oi].last = i;
                    ops[oi].complete = true;
                }
                _ => {
                    let Some(&oi) = open.get(&ii.proc) else {
                        return Err(TraceError::InstrOutsideOperation {
                            proc: ii.proc,
                            op: ii.op,
                        });
                    };
                    if ops[oi].id != ii.op {
                        return Err(TraceError::InterleavedOperations {
                            proc: ii.proc,
                            op: ii.op,
                        });
                    }
                    ops[oi].last = i;
                }
            }
        }

        Ok(Trace { instrs, ops })
    }

    /// The raw instruction instances.
    pub fn instrs(&self) -> &[InstrInstance] {
        &self.instrs
    }

    /// The operations appearing in the trace, in invocation order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// The subsequence of instruction instances issued by `proc`
    /// (the paper's `r|p`).
    pub fn per_proc(&self, proc: ProcId) -> Vec<&InstrInstance> {
        self.instrs.iter().filter(|i| i.proc == proc).collect()
    }

    /// Whether the invocation of operation `k` is *transactional* in the
    /// trace: it occurs within a trace-level transaction
    /// (`(., start) … (/, commit|abort)` or running to the end of the
    /// process's instructions).
    pub fn is_transactional(&self, k: OpId) -> bool {
        let Some(op) = self.ops.iter().find(|o| o.id == k) else {
            return false;
        };
        // Scan the process's operations in order, tracking transaction
        // boundaries.
        let mut in_txn = false;
        for o in self.ops.iter().filter(|o| o.proc == op.proc) {
            match &o.op {
                Op::Start => in_txn = true,
                Op::Commit | Op::Abort => {
                    if o.id == k {
                        return true;
                    }
                    in_txn = false;
                    continue;
                }
                _ => {}
            }
            if o.id == k {
                return in_txn;
            }
        }
        false
    }

    /// Enumerate the histories corresponding to this trace, invoking
    /// `f` on each until it returns `true`; returns the first accepted
    /// history, if any.
    ///
    /// An operation `k` must precede `j` in a corresponding history iff
    /// `k`'s last instruction occurs before `j`'s first instruction
    /// (non-overlapping operation intervals keep their real-time order;
    /// overlapping ones may be ordered freely, subject to per-process
    /// program order, which is implied because a process's operation
    /// intervals never overlap).
    pub fn exists_corresponding(&self, mut f: impl FnMut(&History) -> bool) -> Option<History> {
        let n = self.ops.len();
        // Precedence: i -> j iff ops[i].last < ops[j].first.
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut used = vec![false; n];
        self.enum_orders(&mut order, &mut used, &mut f)
    }

    fn enum_orders(
        &self,
        order: &mut Vec<usize>,
        used: &mut Vec<bool>,
        f: &mut impl FnMut(&History) -> bool,
    ) -> Option<History> {
        let n = self.ops.len();
        if order.len() == n {
            let ops: Vec<OpInstance> = order
                .iter()
                .map(|&i| OpInstance {
                    op: self.ops[i].op.clone(),
                    proc: self.ops[i].proc,
                    id: self.ops[i].id,
                })
                .collect();
            if let Ok(h) = History::new(ops) {
                if f(&h) {
                    return Some(h);
                }
            }
            return None;
        }
        for i in 0..n {
            if used[i] {
                continue;
            }
            // All operations that must precede i are already placed.
            let ok = (0..n).all(|j| j == i || used[j] || self.ops[j].last >= self.ops[i].first);
            if !ok {
                continue;
            }
            used[i] = true;
            order.push(i);
            if let Some(h) = self.enum_orders(order, used, f) {
                return Some(h);
            }
            order.pop();
            used[i] = false;
        }
        None
    }

    /// Collect every history corresponding to this trace (for tests and
    /// small traces only — the count is exponential in the overlap).
    pub fn corresponding_histories(&self) -> Vec<History> {
        let mut out = Vec::new();
        self.exists_corresponding(|h| {
            out.push(h.clone());
            false
        });
        out
    }

    /// A stable 64-bit structural fingerprint of the trace, for
    /// deduplicating structurally identical interleavings in
    /// model-checking sweeps.
    ///
    /// The fingerprint covers exactly what the set of corresponding
    /// histories (and hence any "∃ corresponding history satisfying P"
    /// verdict) depends on: the operation sequence (process, identifier,
    /// operation, completeness) and the pairwise interval-precedence
    /// relation *`i` responds before `j` is invoked*. Two traces with
    /// equal fingerprints therefore have — modulo a vanishingly unlikely
    /// 64-bit collision — the same corresponding histories, even if
    /// their instruction-level interleavings differ. Exhaustive
    /// store-buffer scheduling produces such traces in bulk, which is
    /// what makes this key worth computing.
    pub fn cache_key(&self) -> u64 {
        use jungle_core::fingerprint::{fold_op, Fnv1a};
        let mut f = Fnv1a::new();
        let n = self.ops.len();
        f.word(n as u64);
        for o in &self.ops {
            f.word(u64::from(o.proc.0));
            f.word(u64::from(o.id.0));
            f.word(u64::from(o.complete));
            fold_op(&mut f, &o.op);
        }
        // The precedence relation, packed 64 pairs per word.
        let mut bits = 0u64;
        let mut filled = 0u32;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                bits = (bits << 1) | u64::from(self.ops[i].last < self.ops[j].first);
                filled += 1;
                if filled == 64 {
                    f.word(bits);
                    bits = 0;
                    filled = 0;
                }
            }
        }
        if filled > 0 {
            f.word(bits);
        }
        f.finish()
    }

    /// The canonical corresponding history: every operation linearized
    /// at its response (or last instruction). Useful as a cheap
    /// first-candidate before enumerating.
    pub fn canonical_history(&self) -> Result<History, TraceError> {
        let mut idx: Vec<usize> = (0..self.ops.len()).collect();
        idx.sort_by_key(|&i| self.ops[i].last);
        let ops = idx
            .into_iter()
            .map(|i| OpInstance {
                op: self.ops[i].op.clone(),
                proc: self.ops[i].proc,
                id: self.ops[i].id,
            })
            .collect();
        History::new(ops).map_err(|e| TraceError::IllFormedHistory(e.to_string()))
    }
}

/// Static instruction-cost statistics of a trace, grouped by operation
/// kind — the direct, deterministic measurement of a TM
/// implementation's instrumentation (§4: an uninstrumented
/// non-transactional read is exactly one `load`, Theorem 5's write
/// instrumentation is exactly one `store`, Theorem 4's is a lock
/// round-trip of three-plus instructions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Operations observed.
    pub count: usize,
    /// Total memory instructions (loads + stores + CAS) across them.
    pub instrs: usize,
    /// Maximum memory instructions in a single operation.
    pub max_instrs: usize,
}

impl OpCost {
    fn add(&mut self, n: usize) {
        self.count += 1;
        self.instrs += n;
        self.max_instrs = self.max_instrs.max(n);
    }

    /// Mean instructions per operation (0 if none observed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.instrs as f64 / self.count as f64
        }
    }
}

/// Instruction costs per operation class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostStats {
    /// Non-transactional reads.
    pub nt_read: OpCost,
    /// Non-transactional writes.
    pub nt_write: OpCost,
    /// Transactional reads.
    pub txn_read: OpCost,
    /// Transactional writes.
    pub txn_write: OpCost,
    /// `start` operations.
    pub start: OpCost,
    /// `commit` operations.
    pub commit: OpCost,
    /// `abort` operations.
    pub abort: OpCost,
}

impl Trace {
    /// Compute per-class instruction costs over the completed operations
    /// of this trace.
    pub fn cost_stats(&self) -> CostStats {
        use jungle_core::op::Op;
        let mut st = CostStats::default();
        for top in &self.ops {
            if !top.complete {
                continue;
            }
            let n = self.instrs[top.first..=top.last]
                .iter()
                .filter(|ii| ii.op == top.id && !ii.instr.is_marker())
                .count();
            let txnal = self.is_transactional(top.id);
            match (&top.op, txnal) {
                (Op::Start, _) => st.start.add(n),
                (Op::Commit, _) => st.commit.add(n),
                (Op::Abort, _) => st.abort.add(n),
                (Op::Cmd(c), true) if c.is_read() => st.txn_read.add(n),
                (Op::Cmd(c), true) if c.is_write() => st.txn_write.add(n),
                (Op::Cmd(c), false) if c.is_read() => st.nt_read.add(n),
                (Op::Cmd(c), false) if c.is_write() => st.nt_write.add(n),
                _ => {}
            }
        }
        st
    }
}

/// Builder assembling a trace from per-operation instruction runs.
#[derive(Default, Debug)]
pub struct TraceBuilder {
    instrs: Vec<InstrInstance>,
    next_op: u32,
}

impl TraceBuilder {
    /// New empty builder; operation ids are assigned `1, 2, …`.
    pub fn new() -> Self {
        TraceBuilder {
            instrs: Vec::new(),
            next_op: 1,
        }
    }

    /// Append a complete operation trace: invocation, `body`, response.
    pub fn complete_op(&mut self, proc: ProcId, op: Op, body: Vec<Instr>) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        self.instrs.push(InstrInstance {
            instr: Instr::Inv(op.clone()),
            proc,
            op: id,
        });
        for instr in body {
            self.instrs.push(InstrInstance {
                instr,
                proc,
                op: id,
            });
        }
        self.instrs.push(InstrInstance {
            instr: Instr::Resp(op),
            proc,
            op: id,
        });
        id
    }

    /// Append raw instruction instances (for hand-built interleavings).
    pub fn raw(&mut self, ii: InstrInstance) {
        self.instrs.push(ii);
    }

    /// Reserve an operation id without emitting instructions (for
    /// hand-built interleavings using [`TraceBuilder::raw`]).
    pub fn fresh_op(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        id
    }

    /// Validate and build the trace.
    pub fn build(self) -> Result<Trace, TraceError> {
        Trace::new(self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungle_core::ids::Val;
    use jungle_core::op::Command;

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    fn rd(var: u32, val: Val) -> Op {
        Op::Cmd(Command::Read {
            var: jungle_core::ids::Var(var),
            val,
        })
    }

    fn wr(var: u32, val: Val) -> Op {
        Op::Cmd(Command::Write {
            var: jungle_core::ids::Var(var),
            val,
        })
    }

    /// Figure 4(a): p1 runs a transaction (start acquires a lock with a
    /// CAS on g, reads x, writes x, commit releases g); p2 issues a
    /// non-transactional read of x whose interval overlaps the start.
    fn fig4_trace() -> Trace {
        let g = 100;
        let ax = 0;
        let mut instrs = Vec::new();
        let mut push = |instr: Instr, proc: ProcId, op: u32| {
            instrs.push(InstrInstance {
                instr,
                proc,
                op: OpId(op),
            });
        };
        // Interleaving from the figure.
        push(Instr::Inv(Op::Start), p(1), 1);
        push(
            Instr::Cas {
                addr: g,
                expect: 0,
                new: 1,
                ok: true,
            },
            p(1),
            1,
        );
        push(Instr::Inv(rd(0, 1)), p(2), 2);
        push(Instr::Resp(Op::Start), p(1), 1);
        push(Instr::Load { addr: ax, val: 1 }, p(2), 2);
        push(Instr::Inv(wr(0, 1)), p(1), 3);
        push(Instr::Resp(rd(0, 1)), p(2), 2);
        push(Instr::Store { addr: ax, val: 1 }, p(1), 3);
        push(Instr::Resp(wr(0, 1)), p(1), 3);
        push(Instr::Inv(Op::Commit), p(1), 4);
        push(Instr::Store { addr: g, val: 0 }, p(1), 4);
        push(Instr::Resp(Op::Commit), p(1), 4);
        Trace::new(instrs).unwrap()
    }

    #[test]
    fn fig4_operations_parsed() {
        let r = fig4_trace();
        assert_eq!(r.ops().len(), 4);
        assert!(r.ops().iter().all(|o| o.complete));
    }

    #[test]
    fn fig4_transactional_classification() {
        // "The (single) invocation instance of process p2 is
        // non-transactional, while all invocation instances of process
        // p1 are transactional in r."
        let r = fig4_trace();
        assert!(r.is_transactional(OpId(1)));
        assert!(!r.is_transactional(OpId(2)));
        assert!(r.is_transactional(OpId(3)));
        assert!(r.is_transactional(OpId(4)));
    }

    #[test]
    fn fig4_corresponding_histories_include_h1_and_h2() {
        // h1: start, rd, wr, commit (p2's read after start)
        // h2: rd, start, wr, commit (p2's read before start)
        let r = fig4_trace();
        let hs = r.corresponding_histories();
        let render: Vec<String> = hs
            .iter()
            .map(|h| {
                h.ops()
                    .iter()
                    .map(|o| o.id.0.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        assert!(
            render.contains(&"1,2,3,4".to_string()),
            "h1 missing from {render:?}"
        );
        assert!(
            render.contains(&"2,1,3,4".to_string()),
            "h2 missing from {render:?}"
        );
        // p2's read interval ends before the commit begins: it can
        // never be ordered after operation 4.
        assert!(!render.contains(&"1,3,4,2".to_string()));
        assert!(render.iter().all(|s| !s.ends_with(",2")));
    }

    #[test]
    fn canonical_history_linearizes_at_response() {
        let r = fig4_trace();
        let h = r.canonical_history().unwrap();
        // Response order: start(1), rd(2), wr(3), commit(4).
        let ids: Vec<u32> = h.ops().iter().map(|o| o.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn incomplete_operation_allowed_at_end() {
        let instrs = vec![
            InstrInstance {
                instr: Instr::Inv(rd(0, 0)),
                proc: p(1),
                op: OpId(1),
            },
            InstrInstance {
                instr: Instr::Load { addr: 0, val: 0 },
                proc: p(1),
                op: OpId(1),
            },
        ];
        let r = Trace::new(instrs).unwrap();
        assert_eq!(r.ops().len(), 1);
        assert!(!r.ops()[0].complete);
    }

    #[test]
    fn interleaved_ops_of_same_process_rejected() {
        let instrs = vec![
            InstrInstance {
                instr: Instr::Inv(rd(0, 0)),
                proc: p(1),
                op: OpId(1),
            },
            InstrInstance {
                instr: Instr::Inv(rd(1, 0)),
                proc: p(1),
                op: OpId(2),
            },
        ];
        assert!(matches!(
            Trace::new(instrs),
            Err(TraceError::InterleavedOperations { .. })
        ));
    }

    #[test]
    fn instr_outside_operation_rejected() {
        let instrs = vec![InstrInstance {
            instr: Instr::Load { addr: 0, val: 0 },
            proc: p(1),
            op: OpId(1),
        }];
        assert!(matches!(
            Trace::new(instrs),
            Err(TraceError::InstrOutsideOperation { .. })
        ));
    }

    #[test]
    fn duplicate_op_id_rejected() {
        let instrs = vec![
            InstrInstance {
                instr: Instr::Inv(rd(0, 0)),
                proc: p(1),
                op: OpId(1),
            },
            InstrInstance {
                instr: Instr::Resp(rd(0, 0)),
                proc: p(1),
                op: OpId(1),
            },
            InstrInstance {
                instr: Instr::Inv(rd(1, 0)),
                proc: p(1),
                op: OpId(1),
            },
        ];
        assert!(matches!(
            Trace::new(instrs),
            Err(TraceError::DuplicateOperation { .. })
        ));
    }

    #[test]
    fn builder_produces_sequential_trace() {
        let mut b = TraceBuilder::new();
        b.complete_op(
            p(1),
            Op::Start,
            vec![Instr::Cas {
                addr: 9,
                expect: 0,
                new: 1,
                ok: true,
            }],
        );
        b.complete_op(p(1), wr(0, 5), vec![Instr::Store { addr: 0, val: 5 }]);
        b.complete_op(p(1), Op::Commit, vec![Instr::Store { addr: 9, val: 0 }]);
        let r = b.build().unwrap();
        assert_eq!(r.ops().len(), 3);
        assert_eq!(r.corresponding_histories().len(), 1);
    }

    #[test]
    fn cost_stats_classify_and_count() {
        let r = fig4_trace();
        let st = r.cost_stats();
        // p2's non-transactional read: one load.
        assert_eq!(st.nt_read.count, 1);
        assert_eq!(st.nt_read.instrs, 1);
        assert_eq!(st.nt_read.max_instrs, 1);
        // p1's transactional write: one store in this trace.
        assert_eq!(st.txn_write.count, 1);
        assert_eq!(st.txn_write.instrs, 1);
        // start = one CAS; commit = one store.
        assert_eq!(st.start.instrs, 1);
        assert_eq!(st.commit.instrs, 1);
        assert_eq!(st.abort.count, 0);
        assert!((st.nt_read.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cache_key_ignores_instr_interleaving_but_not_overlap() {
        // Two interleavings of the same operations with the same
        // overlap structure fingerprint identically even though the
        // instruction streams differ.
        let mk = |swap: bool| {
            let mut instrs = Vec::new();
            let mut push = |instr: Instr, proc: ProcId, op: u32| {
                instrs.push(InstrInstance {
                    instr,
                    proc,
                    op: OpId(op),
                });
            };
            push(Instr::Inv(rd(0, 0)), p(1), 1);
            push(Instr::Inv(rd(1, 0)), p(2), 2);
            if swap {
                push(Instr::Load { addr: 1, val: 0 }, p(2), 2);
                push(Instr::Load { addr: 0, val: 0 }, p(1), 1);
            } else {
                push(Instr::Load { addr: 0, val: 0 }, p(1), 1);
                push(Instr::Load { addr: 1, val: 0 }, p(2), 2);
            }
            push(Instr::Resp(rd(0, 0)), p(1), 1);
            push(Instr::Resp(rd(1, 0)), p(2), 2);
            Trace::new(instrs).unwrap()
        };
        assert_eq!(mk(false).cache_key(), mk(true).cache_key());

        // Making the operations non-overlapping changes the precedence
        // relation — and the fingerprint.
        let mut b = TraceBuilder::new();
        b.complete_op(p(1), rd(0, 0), vec![Instr::Load { addr: 0, val: 0 }]);
        b.complete_op(p(2), rd(1, 0), vec![Instr::Load { addr: 1, val: 0 }]);
        let sequential = b.build().unwrap();
        assert_ne!(mk(false).cache_key(), sequential.cache_key());
    }

    #[test]
    fn exists_corresponding_early_exit() {
        let r = fig4_trace();
        let mut count = 0;
        let found = r.exists_corresponding(|_| {
            count += 1;
            true // accept the first
        });
        assert!(found.is_some());
        assert_eq!(count, 1);
    }
}
