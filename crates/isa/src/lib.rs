//! # jungle-isa — instructions, traces, and TM implementations (§4)
//!
//! The paper models a TM implementation `I = (I_T, I_N)` as a mapping
//! from operations to *instruction* sequences over the hardware
//! primitives `load`, `store` and `cas`, bracketed by invocation
//! (`(., o)`) and response (`(/, o)`) markers. A **trace** is a sequence
//! of instruction instances; a **history corresponds to a trace** when
//! each operation can be assigned a linearization point between its
//! invocation and response that yields the history order.
//!
//! This crate provides:
//!
//! * [`instr`] — the instruction alphabet `În` and instruction instances;
//! * [`trace`] — traces, per-process operation traces, trace-level
//!   transactions, and the enumeration of corresponding histories;
//! * [`tm`] — the instrumentation taxonomy of TM implementations
//!   (uninstrumented / write-instrumented / fully instrumented, and the
//!   constant-time bound of Theorem 5).
//!
//! The operational TM algorithms that *generate* traces live in
//! `jungle-mc` (abstract, model-checked) and `jungle-stm` (real atomics);
//! this crate is the common vocabulary between them and `jungle-core`.

#![warn(missing_docs)]

pub mod instr;
pub mod tm;
pub mod trace;

pub use instr::{Addr, Instr, InstrInstance};
pub use tm::Instrumentation;
pub use trace::{Trace, TraceError};
