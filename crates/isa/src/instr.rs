//! The instruction alphabet `În = In ∪ ({., /} × Ô)` (§4).
//!
//! `In ::= ⟨load a, v⟩ | ⟨store a, v⟩ | ⟨cas a, v, v′⟩`. As with
//! commands, return values are inlined: a load carries the value it
//! returned, a CAS records whether it succeeded. Invocation and response
//! markers delimit the instruction sequence implementing one operation.

use jungle_core::ids::{OpId, ProcId, Val};
use jungle_core::op::Op;
use std::fmt;

/// A memory address (an element of the paper's `Addr`).
pub type Addr = u32;

/// One hardware instruction or operation boundary marker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Instr {
    /// `⟨load a, v⟩`: read address `a`, observing value `v`.
    Load {
        /// Address read.
        addr: Addr,
        /// Value observed.
        val: Val,
    },
    /// `⟨store a, v⟩`: write value `v` to address `a`.
    Store {
        /// Address written.
        addr: Addr,
        /// Value stored.
        val: Val,
    },
    /// `⟨cas a, v, v′⟩`: compare-and-swap on address `a` from `expect`
    /// to `new`; `ok` records whether the swap took effect.
    Cas {
        /// Address updated.
        addr: Addr,
        /// Expected old value.
        expect: Val,
        /// New value installed on success.
        new: Val,
        /// Whether the CAS succeeded.
        ok: bool,
    },
    /// Invocation marker `(., o)`: the operation `o` begins.
    Inv(Op),
    /// Response marker `(/, o)`: the operation `o` ends.
    Resp(Op),
}

impl Instr {
    /// True for `store` and successful `cas` — the paper's *update
    /// instructions* (Lemma 1).
    pub fn is_update(&self) -> bool {
        matches!(self, Instr::Store { .. } | Instr::Cas { ok: true, .. })
    }

    /// The address accessed, for memory instructions.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Instr::Load { addr, .. } | Instr::Store { addr, .. } | Instr::Cas { addr, .. } => {
                Some(*addr)
            }
            _ => None,
        }
    }

    /// True for the invocation/response markers.
    pub fn is_marker(&self) -> bool {
        matches!(self, Instr::Inv(_) | Instr::Resp(_))
    }
}

/// An instruction instance `(in, p, k)`: instruction `in` issued by
/// process `p` as part of operation `k`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstrInstance {
    /// The instruction.
    pub instr: Instr,
    /// Issuing process.
    pub proc: ProcId,
    /// Identifier of the operation this instruction belongs to.
    pub op: OpId,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Load { addr, val } => write!(f, "⟨load a{addr},{val}⟩"),
            Instr::Store { addr, val } => write!(f, "⟨store a{addr},{val}⟩"),
            Instr::Cas {
                addr,
                expect,
                new,
                ok,
            } => {
                write!(
                    f,
                    "⟨cas a{addr},{expect},{new}⟩{}",
                    if *ok { "✓" } else { "✗" }
                )
            }
            Instr::Inv(op) => write!(f, "(.,{op})"),
            Instr::Resp(op) => write!(f, "(/,{op})"),
        }
    }
}

impl fmt::Display for InstrInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.instr, self.proc, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_instructions() {
        assert!(Instr::Store { addr: 0, val: 1 }.is_update());
        assert!(Instr::Cas {
            addr: 0,
            expect: 0,
            new: 1,
            ok: true
        }
        .is_update());
        assert!(!Instr::Cas {
            addr: 0,
            expect: 0,
            new: 1,
            ok: false
        }
        .is_update());
        assert!(!Instr::Load { addr: 0, val: 1 }.is_update());
        assert!(!Instr::Inv(Op::Start).is_update());
    }

    #[test]
    fn addr_extraction_and_markers() {
        assert_eq!(Instr::Load { addr: 7, val: 0 }.addr(), Some(7));
        assert_eq!(
            Instr::Cas {
                addr: 3,
                expect: 0,
                new: 1,
                ok: true
            }
            .addr(),
            Some(3)
        );
        assert_eq!(Instr::Inv(Op::Commit).addr(), None);
        assert!(Instr::Inv(Op::Start).is_marker());
        assert!(Instr::Resp(Op::Abort).is_marker());
        assert!(!Instr::Store { addr: 0, val: 0 }.is_marker());
    }

    #[test]
    fn display() {
        assert_eq!(Instr::Load { addr: 2, val: 5 }.to_string(), "⟨load a2,5⟩");
        assert_eq!(
            Instr::Cas {
                addr: 0,
                expect: 0,
                new: 1,
                ok: true
            }
            .to_string(),
            "⟨cas a0,0,1⟩✓"
        );
    }
}
