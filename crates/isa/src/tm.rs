//! Instrumentation taxonomy of TM implementations (§4, §5).
//!
//! The paper distinguishes TM implementations by how their
//! *non-transactional* operations are implemented:
//!
//! * **uninstrumented** — `I_N(rd x) = {⟨load aₓ⟩}` and
//!   `I_N(wr x v) = {⟨store aₓ, v⟩}` (plain memory accesses);
//! * instrumented writes with **unbounded** sequences (Theorem 4: each
//!   non-transactional write is a little transaction that spins on a
//!   lock);
//! * instrumented writes with **constant-time** instrumentation
//!   (Theorem 5: a bounded number of instructions per write);
//! * **fully instrumented** reads and writes (the strong-atomicity STM
//!   of §6.1).

use std::fmt;

/// How a TM implementation instruments non-transactional operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instrumentation {
    /// Plain loads and stores for non-transactional accesses.
    Uninstrumented,
    /// Reads are plain loads; writes execute a bounded extra instruction
    /// sequence of length at most `bound` (Theorem 5's constant-time
    /// write instrumentation).
    ConstantTimeWrites {
        /// Maximum number of instructions a non-transactional write may
        /// execute.
        bound: usize,
    },
    /// Reads are plain loads; writes may execute unboundedly many
    /// instructions (e.g. lock acquisition loops — Theorem 4).
    UnboundedWrites,
    /// Both reads and writes are instrumented (strong-atomicity STMs).
    Full,
}

impl Instrumentation {
    /// Are non-transactional reads plain loads?
    pub fn reads_uninstrumented(&self) -> bool {
        !matches!(self, Instrumentation::Full)
    }

    /// Are non-transactional writes plain stores?
    pub fn writes_uninstrumented(&self) -> bool {
        matches!(self, Instrumentation::Uninstrumented)
    }

    /// Do non-transactional writes complete in a bounded number of
    /// instructions?
    pub fn writes_constant_time(&self) -> bool {
        matches!(
            self,
            Instrumentation::Uninstrumented | Instrumentation::ConstantTimeWrites { .. }
        )
    }
}

impl fmt::Display for Instrumentation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instrumentation::Uninstrumented => write!(f, "uninstrumented"),
            Instrumentation::ConstantTimeWrites { bound } => {
                write!(f, "constant-time writes (≤{bound} instrs)")
            }
            Instrumentation::UnboundedWrites => write!(f, "unbounded writes"),
            Instrumentation::Full => write!(f, "fully instrumented"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_predicates() {
        let u = Instrumentation::Uninstrumented;
        assert!(u.reads_uninstrumented() && u.writes_uninstrumented() && u.writes_constant_time());

        let c = Instrumentation::ConstantTimeWrites { bound: 3 };
        assert!(c.reads_uninstrumented());
        assert!(!c.writes_uninstrumented());
        assert!(c.writes_constant_time());

        let w = Instrumentation::UnboundedWrites;
        assert!(w.reads_uninstrumented());
        assert!(!w.writes_constant_time());

        let f = Instrumentation::Full;
        assert!(!f.reads_uninstrumented());
        assert!(!f.writes_uninstrumented());
    }

    #[test]
    fn display() {
        assert_eq!(
            Instrumentation::Uninstrumented.to_string(),
            "uninstrumented"
        );
        assert_eq!(
            Instrumentation::ConstantTimeWrites { bound: 2 }.to_string(),
            "constant-time writes (≤2 instrs)"
        );
    }
}
