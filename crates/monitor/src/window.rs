//! Windowing: turn the tap's flat event stream into checkable
//! [`History`] values.
//!
//! The monitor cannot check an unbounded stream at once, so it cuts the
//! stream into **windows of `K` completed transaction attempts**
//! (commits and aborts both count — an attempt that finished is an
//! attempt the checker can place). Transactions still open when a
//! window fills are **carried over**: their events (from their `Begin`)
//! move wholesale into the next window, so no transaction is ever split
//! across two checked histories.
//!
//! ## Cross-window value continuity
//!
//! A read in window `n+1` may observe a value committed in window `n`,
//! which the checker — seeing only window `n+1` — could not justify.
//! The builder therefore tracks the **latest committed value per
//! variable** (in commit-ticket order, see
//! [`TapOp::Commit`](jungle_stm::TapOp::Commit)) and prepends each
//! window with a synthetic committed *initializer transaction* on the
//! reserved process [`INIT_PID`] that writes those values. The
//! initializer precedes every real event of the window in real time,
//! so any serialization order the checker finds places it first: it
//! plays the role of "the state the previous windows left behind".
//!
//! Ticket order is the *publish* order of commits, which can lag the
//! true commit order (the tap publishes `Commit` after the algorithm
//! finished). A raced seed can therefore be stale; the monitor gives
//! such windows a **second chance** with the initializer re-seeded from
//! the first value each variable was actually *read* to contain
//! ([`SealedWindow::reseeded`]) before declaring a violation. What the
//! window model inherently cannot see is an anomaly whose every witness
//! spans two windows (e.g. a stale read in window `n+1` of a variable
//! whose overwrite committed in window `n`): the initializer collapses
//! the previous windows into a single final state. This is the standard
//! precision/throughput trade of windowed runtime verification — the
//! monitor is sound for everything in one window and best-effort
//! across.
//!
//! ## Dropped events
//!
//! Under [`Backpressure::Drop`](jungle_obs::Backpressure) the stream may
//! have counted gaps. Rather than panic on a now-malformed per-process
//! sequence, [`build_history`] sanitizes: a `Begin` while the same
//! process is already open synthesizes a closing `Abort` first; a
//! `Commit`/`Abort` with no open transaction is skipped. Every such
//! repair is counted in [`SealedWindow::repaired`]. Under
//! `Backpressure::Block` no event is ever lost and no repair ever
//! fires; that is the policy to use when verdicts matter.

use jungle_core::builder::HistoryBuilder;
use jungle_core::history::History;
use jungle_core::ids::{ProcId, Var};
use jungle_stm::{TapEvent, TapOp};
use std::collections::BTreeMap;

/// Reserved process id for the synthetic initializer transaction. Real
/// STM threads are numbered from 0, so the all-ones id never collides.
pub const INIT_PID: u32 = u32::MAX;

/// Convert a tap variable index (widened to `u64` at the publish site)
/// back to a history [`Var`]. Checked: a heap with more than `u32::MAX`
/// variables cannot occur, and silently truncating would alias
/// distinct variables in the checked history.
fn var(raw: u64) -> Var {
    Var(u32::try_from(raw).expect("tap variable index exceeds u32: would alias in the history"))
}

/// A sealed window: the checkable history plus enough residue to build
/// the second-chance variant.
#[derive(Debug)]
pub struct SealedWindow {
    /// The window's history: initializer transaction (if any seed is
    /// nonzero) followed by the window's events in arrival order.
    pub history: History,
    /// Completed transaction attempts inside this window.
    pub completed: usize,
    /// Sanitization repairs performed while building the history
    /// (always 0 under `Backpressure::Block`).
    pub repaired: u64,
    events: Vec<TapEvent>,
    init_writes: Vec<(u64, u64)>,
}

impl SealedWindow {
    /// The second-chance history: the same window re-seeded so that
    /// every variable whose **first in-window access is a read** is
    /// initialized to the value that read observed. Returns `None`
    /// when re-seeding changes nothing (the re-check would repeat the
    /// same verdict).
    pub fn reseeded(&self) -> Option<History> {
        let mut first_read: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        for ev in &self.events {
            match ev.op {
                TapOp::Read { var, val } => {
                    first_read.entry(var).or_insert(Some(val));
                }
                TapOp::Write { var, .. } => {
                    // First access is a write: the tracked seed stands.
                    first_read.entry(var).or_insert(None);
                }
                _ => {}
            }
        }
        let mut seeds = self.init_writes.clone();
        let mut changed = false;
        for (v, val) in &mut seeds {
            if let Some(Some(seen)) = first_read.get(v) {
                if *seen != *val {
                    *val = *seen;
                    changed = true;
                }
            }
        }
        // A read of a variable with no tracked seed at all (implicit 0)
        // also needs a seed if it observed something else.
        for (v, fr) in &first_read {
            if let Some(seen) = fr {
                if *seen != 0 && !seeds.iter().any(|(sv, _)| sv == v) {
                    seeds.push((*v, *seen));
                    changed = true;
                }
            }
        }
        if !changed {
            return None;
        }
        Some(build_history(&self.events, &seeds).0)
    }
}

/// Build a window history: synthetic initializer transaction writing
/// `init_writes` (zero-valued seeds are omitted — histories read 0 as
/// the implicit initial value), then `events` in arrival order, with
/// the drop-gap sanitization described in the module docs. Returns the
/// history and the repair count.
pub fn build_history(events: &[TapEvent], init_writes: &[(u64, u64)]) -> (History, u64) {
    let mut b = HistoryBuilder::new();
    let init: Vec<&(u64, u64)> = init_writes.iter().filter(|(_, val)| *val != 0).collect();
    if !init.is_empty() {
        let ip = ProcId(INIT_PID);
        b.start(ip);
        for (v, val) in init {
            b.write(ip, var(*v), *val);
        }
        b.commit(ip);
    }
    let mut open: BTreeMap<u32, bool> = BTreeMap::new();
    let mut repaired = 0u64;
    for ev in events {
        let p = ev.pid;
        let is_open = open.get(&p.0).copied().unwrap_or(false);
        match ev.op {
            TapOp::Begin => {
                if is_open {
                    // A Commit/Abort was dropped from the stream: close
                    // the phantom attempt before opening the new one.
                    b.abort(p);
                    repaired += 1;
                }
                b.start(p);
                open.insert(p.0, true);
            }
            TapOp::Read { var: v, val } => {
                b.read(p, var(v), val);
            }
            TapOp::Write { var: v, val } => {
                b.write(p, var(v), val);
            }
            TapOp::Commit { .. } => {
                if is_open {
                    b.commit(p);
                    open.insert(p.0, false);
                } else {
                    repaired += 1; // Begin was dropped: nothing to close.
                }
            }
            TapOp::Abort => {
                if is_open {
                    b.abort(p);
                    open.insert(p.0, false);
                } else {
                    repaired += 1;
                }
            }
        }
    }
    let h = b
        .build()
        .expect("sanitized window event sequence is well-formed");
    (h, repaired)
}

/// Accumulates tap events and seals them into windows of
/// `window_txns` completed transaction attempts.
#[derive(Debug)]
pub struct WindowBuilder {
    window_txns: usize,
    pending: Vec<TapEvent>,
    completed: usize,
    /// Latest committed value per variable, with the commit ticket that
    /// wrote it (max ticket wins across windows).
    tracked: BTreeMap<u64, (u64, u64)>,
}

impl WindowBuilder {
    /// A builder sealing after `window_txns` completed attempts (min 1).
    pub fn new(window_txns: usize) -> Self {
        WindowBuilder {
            window_txns: window_txns.max(1),
            pending: Vec::new(),
            completed: 0,
            tracked: BTreeMap::new(),
        }
    }

    /// Buffer one event; returns `true` when the window is ready to
    /// [`seal`](WindowBuilder::seal).
    pub fn push(&mut self, ev: TapEvent) -> bool {
        if matches!(ev.op, TapOp::Commit { .. } | TapOp::Abort) {
            self.completed += 1;
        }
        self.pending.push(ev);
        self.completed >= self.window_txns
    }

    /// Events buffered but not yet sealed (including carried-over open
    /// transactions).
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Seal the current window. Events of transactions still open move
    /// to the next window; everything else becomes the window history,
    /// prefixed by the initializer transaction. Returns `None` when
    /// nothing would be checked (no events beyond carried prefixes).
    pub fn seal(&mut self) -> Option<SealedWindow> {
        // A transaction is open iff its process has an unmatched Begin;
        // find, per process, the index of that Begin.
        let mut open_from: BTreeMap<u32, usize> = BTreeMap::new();
        for (i, ev) in self.pending.iter().enumerate() {
            match ev.op {
                TapOp::Begin => {
                    open_from.insert(ev.pid.0, i);
                }
                TapOp::Commit { .. } | TapOp::Abort => {
                    open_from.remove(&ev.pid.0);
                }
                _ => {}
            }
        }
        let mut window = Vec::with_capacity(self.pending.len());
        let mut carried = Vec::new();
        for (i, ev) in self.pending.drain(..).enumerate() {
            let carry = open_from.get(&ev.pid.0).is_some_and(|&from| i >= from);
            if carry {
                carried.push(ev);
            } else {
                window.push(ev);
            }
        }
        self.pending = carried;
        self.completed = 0;
        if window.is_empty() {
            return None;
        }

        // Seed: the tracked committed value of every variable the
        // window touches (missing entries are the implicit initial 0).
        let mut init_writes = Vec::new();
        let mut seen = BTreeMap::new();
        for ev in &window {
            if let TapOp::Read { var, .. } | TapOp::Write { var, .. } = ev.op {
                if seen.insert(var, ()).is_none() {
                    let seed = self.tracked.get(&var).map_or(0, |&(_, val)| val);
                    init_writes.push((var, seed));
                }
            }
        }

        // Fold this window's committed write sets into the tracked
        // state, in ticket order (max ticket wins, so a commit whose
        // publish raced past a later one cannot clobber it).
        let mut ws: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
        for ev in &window {
            match ev.op {
                TapOp::Begin => {
                    ws.insert(ev.pid.0, Vec::new());
                }
                TapOp::Write { var, val } => {
                    if let Some(w) = ws.get_mut(&ev.pid.0) {
                        w.push((var, val));
                    }
                }
                TapOp::Commit { ticket } => {
                    for (var, val) in ws.remove(&ev.pid.0).unwrap_or_default() {
                        let e = self.tracked.entry(var).or_insert((ticket, val));
                        if ticket >= e.0 {
                            *e = (ticket, val);
                        }
                    }
                }
                TapOp::Abort => {
                    ws.remove(&ev.pid.0);
                }
                TapOp::Read { .. } => {}
            }
        }

        let completed = window
            .iter()
            .filter(|e| matches!(e.op, TapOp::Commit { .. } | TapOp::Abort))
            .count();
        let (history, repaired) = build_history(&window, &init_writes);
        Some(SealedWindow {
            history,
            completed,
            repaired,
            events: window,
            init_writes,
        })
    }

    /// Final flush: seal everything buffered, **including** still-open
    /// transactions (they appear as live transactions in the history).
    pub fn flush(&mut self) -> Option<SealedWindow> {
        if self.pending.is_empty() {
            return None;
        }
        // Force every pending event into the window by pretending no
        // transaction is open: steal the buffer, seal, then restore
        // nothing (flush ends the stream).
        let window = std::mem::take(&mut self.pending);
        self.completed = 0;
        let mut init_writes = Vec::new();
        let mut seen = BTreeMap::new();
        for ev in &window {
            if let TapOp::Read { var, .. } | TapOp::Write { var, .. } = ev.op {
                if seen.insert(var, ()).is_none() {
                    let seed = self.tracked.get(&var).map_or(0, |&(_, val)| val);
                    init_writes.push((var, seed));
                }
            }
        }
        let completed = window
            .iter()
            .filter(|e| matches!(e.op, TapOp::Commit { .. } | TapOp::Abort))
            .count();
        let (history, repaired) = build_history(&window, &init_writes);
        Some(SealedWindow {
            history,
            completed,
            repaired,
            events: window,
            init_writes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungle_core::history::TxnStatus;
    use jungle_core::model::Sc;
    use jungle_core::opacity::check_opacity;

    fn ev(pid: u32, op: TapOp) -> TapEvent {
        TapEvent {
            pid: ProcId(pid),
            op,
        }
    }

    #[test]
    fn seals_after_k_completed_attempts() {
        let mut wb = WindowBuilder::new(2);
        assert!(!wb.push(ev(0, TapOp::Begin)));
        assert!(!wb.push(ev(0, TapOp::Write { var: 0, val: 1 })));
        assert!(!wb.push(ev(0, TapOp::Commit { ticket: 0 })));
        assert!(!wb.push(ev(1, TapOp::Begin)));
        assert!(wb.push(ev(1, TapOp::Abort)));
        let w = wb.seal().unwrap();
        assert_eq!(w.completed, 2);
        assert_eq!(w.repaired, 0);
        assert_eq!(w.history.txns().len(), 2);
        assert!(check_opacity(&w.history, &Sc).is_opaque());
    }

    #[test]
    fn open_txns_carry_over_whole() {
        let mut wb = WindowBuilder::new(1);
        wb.push(ev(0, TapOp::Begin));
        wb.push(ev(1, TapOp::Begin));
        wb.push(ev(1, TapOp::Write { var: 3, val: 9 }));
        wb.push(ev(0, TapOp::Commit { ticket: 0 }));
        let w = wb.seal().unwrap();
        // Pid 1's open transaction moved wholesale to the next window.
        assert_eq!(w.history.txns().len(), 1);
        assert_eq!(wb.backlog(), 2);
        wb.push(ev(1, TapOp::Commit { ticket: 1 }));
        let w2 = wb.flush().unwrap();
        assert_eq!(w2.history.txns().len(), 1);
        assert_eq!(w2.history.txns()[0].status, TxnStatus::Committed);
    }

    #[test]
    fn tracked_values_seed_next_window() {
        let mut wb = WindowBuilder::new(1);
        wb.push(ev(0, TapOp::Begin));
        wb.push(ev(0, TapOp::Write { var: 7, val: 42 }));
        wb.push(ev(0, TapOp::Commit { ticket: 0 }));
        wb.seal().unwrap();
        // Window 2 reads the value committed in window 1.
        wb.push(ev(1, TapOp::Begin));
        wb.push(ev(1, TapOp::Read { var: 7, val: 42 }));
        wb.push(ev(1, TapOp::Commit { ticket: 1 }));
        let w = wb.seal().unwrap();
        // Initializer (INIT_PID) + the real transaction.
        assert_eq!(w.history.txns().len(), 2);
        assert!(
            check_opacity(&w.history, &Sc).is_opaque(),
            "cross-window read must be justified by the initializer"
        );
    }

    #[test]
    fn ticket_order_wins_over_arrival_order() {
        let mut wb = WindowBuilder::new(2);
        // Publish order inverted relative to tickets: ticket 1 arrives
        // first. The tracked value must be ticket 1's, not ticket 0's.
        wb.push(ev(0, TapOp::Begin));
        wb.push(ev(0, TapOp::Write { var: 0, val: 200 }));
        wb.push(ev(1, TapOp::Begin));
        wb.push(ev(1, TapOp::Write { var: 0, val: 100 }));
        wb.push(ev(0, TapOp::Commit { ticket: 1 }));
        wb.push(ev(1, TapOp::Commit { ticket: 0 }));
        wb.seal().unwrap();
        wb.push(ev(2, TapOp::Begin));
        wb.push(ev(2, TapOp::Read { var: 0, val: 200 }));
        wb.push(ev(2, TapOp::Commit { ticket: 2 }));
        let w = wb.flush().unwrap();
        assert!(check_opacity(&w.history, &Sc).is_opaque());
    }

    #[test]
    fn drop_gaps_are_repaired_not_fatal() {
        // Begin, (dropped Commit), Begin again; and a Commit with a
        // dropped Begin on another process.
        let events = vec![
            ev(0, TapOp::Begin),
            ev(0, TapOp::Write { var: 0, val: 1 }),
            ev(0, TapOp::Begin),
            ev(0, TapOp::Commit { ticket: 0 }),
            ev(1, TapOp::Commit { ticket: 1 }),
        ];
        let (h, repaired) = build_history(&events, &[]);
        assert_eq!(repaired, 2);
        assert_eq!(h.txns().len(), 2); // phantom aborted + real committed
    }

    #[test]
    fn reseeded_replaces_stale_seeds_with_first_reads() {
        let mut wb = WindowBuilder::new(1);
        wb.push(ev(0, TapOp::Begin));
        wb.push(ev(0, TapOp::Write { var: 0, val: 5 }));
        wb.push(ev(0, TapOp::Commit { ticket: 0 }));
        wb.seal().unwrap();
        // The next window reads 6 — a value the tracker never saw
        // (e.g. its commit publish raced past the seal).
        wb.push(ev(1, TapOp::Begin));
        wb.push(ev(1, TapOp::Read { var: 0, val: 6 }));
        wb.push(ev(1, TapOp::Commit { ticket: 1 }));
        let w = wb.flush().unwrap();
        assert!(!check_opacity(&w.history, &Sc).is_opaque());
        let h2 = w.reseeded().expect("seed changed");
        assert!(check_opacity(&h2, &Sc).is_opaque());
        // A window whose seeds already match has no second chance.
        let mut wb2 = WindowBuilder::new(1);
        wb2.push(ev(0, TapOp::Begin));
        wb2.push(ev(0, TapOp::Read { var: 0, val: 0 }));
        wb2.push(ev(0, TapOp::Commit { ticket: 0 }));
        let w2 = wb2.flush().unwrap();
        assert!(w2.reseeded().is_none());
    }
}
