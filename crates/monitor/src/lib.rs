//! # jungle-monitor — streaming opacity monitor for live STM traffic
//!
//! The batch pipeline (record a whole execution, convert it to a trace,
//! check it) answers "was that run correct?" *after* the fact. This
//! crate answers it **while the STMs run**: worker threads publish
//! every transactional operation into a bounded ring (the
//! [`StmTap`](jungle_stm::StmTap) attached to their contexts), and a
//! consumer thread cuts the stream into transaction windows and checks
//! each one with a tiered pipeline —
//!
//! * a **polynomial triage tier** ([`jungle_core::triage`]) that
//!   certifies the common case on every window, and
//! * the **full batch checker** (with the model checker's shared
//!   verdict memo) for the windows triage cannot clear.
//!
//! Backpressure between producers and the monitor is explicit: a
//! [`Backpressure::Block`](jungle_obs::Backpressure) tap never loses an
//! event (verdict mode); a `Drop` tap counts every loss exactly
//! (throughput mode, best-effort verdicts). See [`window`] for the
//! window/carry-over model and its cross-window precision trade, and
//! [`monitor`] for the tier semantics.

#![warn(missing_docs)]

pub mod monitor;
pub mod window;

pub use monitor::{Monitor, MonitorConfig};
pub use window::{build_history, SealedWindow, WindowBuilder, INIT_PID};
