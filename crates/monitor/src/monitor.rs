//! The streaming monitor: ingest → window → triage → (maybe) escalate.
//!
//! Checking parametrized opacity is NP-hard in general — the batch
//! checkers ([`check_opacity`] / [`check_sgla`]) enumerate transaction
//! serialization orders. Running them on every window of a live stream
//! would cap throughput at the checker's worst case. The monitor is
//! therefore **tiered**:
//!
//! 1. **Triage** (polynomial, every window): [`triage_opacity`] replays
//!    two candidate serialization orders — sorted by first and by last
//!    operation index — through the incremental legality checker. The
//!    construction in `jungle_core::triage` proves a cleared window is
//!    opaque under the window's model (and, via the paper's Theorem 6,
//!    SGLA too), so triage **never produces a verdict the batch checker
//!    would contradict**: it only ever says "provably fine" or "don't
//!    know".
//! 2. **Escalation** (exponential, rare): un-cleared windows go to the
//!    full batch checker, through the [`SharedVerdictMemo`] so repeated
//!    window shapes (fingerprinted by [`History::cache_key`]) are
//!    checked once.
//! 3. **Second chance** (see [`SealedWindow::reseeded`]): a window that
//!    fails the full check is re-checked with its initializer re-seeded
//!    from first-observed reads before being declared a violation,
//!    absorbing commit-publish races at window boundaries.
//!
//! Under well-behaved traffic the triage tier clears the overwhelming
//! majority of windows, so the monitor's steady-state cost is the
//! polynomial tier plus ring traffic.
//!
//! Every stage emits flight-recorder events under the `monitor`
//! category (`MonitorIngest`, `WindowSeal`, `TriageClear`, `Escalate`,
//! `MonitorViolation`), so `--trace` sessions show the tier decisions
//! inline with the STM events that caused them.

use crate::window::{SealedWindow, WindowBuilder};
use jungle_core::encode::{check_opacity_sat, check_sgla_sat, CheckBackend};
use jungle_core::history::History;
use jungle_core::opacity::check_opacity;
use jungle_core::registry::{entry, ModelEntry};
use jungle_core::sgla::check_sgla;
use jungle_core::triage::triage_opacity;
use jungle_mc::{CheckKind, SharedVerdictMemo};
use jungle_obs::trace::{self, EventKind};
use jungle_obs::{Counter, MonitorStats, ScopedSpan};
use jungle_stm::{StmTap, TapEvent};
use std::sync::Arc;
use std::time::Instant;

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Completed transaction attempts per window.
    pub window_txns: usize,
    /// Which property to enforce on escalation.
    pub kind: CheckKind,
    /// The memory model parametrizing the property.
    pub model: &'static ModelEntry,
    /// Which engine runs the escalation tier: the order-enumerating DFS
    /// checker or the CDCL SAT backend. Verdicts are identical either
    /// way (the SAT backend certifies every positive through the same
    /// DFS leaf), so the shared memo stays backend-agnostic.
    pub backend: CheckBackend,
}

impl MonitorConfig {
    /// Defaults: 64-transaction windows, opacity, SC.
    pub fn new() -> Self {
        MonitorConfig {
            window_txns: 64,
            kind: CheckKind::Opacity,
            model: entry("SC").expect("SC is always registered"),
            backend: CheckBackend::Dfs,
        }
    }

    /// Set the window size (builder style).
    pub fn window(mut self, txns: usize) -> Self {
        self.window_txns = txns;
        self
    }

    /// Set the property kind (builder style).
    pub fn kind(mut self, kind: CheckKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set the memory model (builder style).
    pub fn model(mut self, model: &'static ModelEntry) -> Self {
        self.model = model;
        self
    }

    /// Set the escalation-tier engine (builder style).
    pub fn backend(mut self, backend: CheckBackend) -> Self {
        self.backend = backend;
        self
    }
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig::new()
    }
}

/// Panic-safe accumulation sinks for the tier timings: the
/// [`ScopedSpan`] guards time into these counters, so an early return
/// or a checker panic can never lose the elapsed time.
#[derive(Debug, Default)]
struct TierClocks {
    triage: Counter,
    escalate: Counter,
}

/// The online checker. Feed it events ([`Monitor::ingest`]) or let it
/// consume a tap ([`Monitor::run`]); read the verdicts off
/// [`Monitor::stats`].
pub struct Monitor {
    cfg: MonitorConfig,
    builder: WindowBuilder,
    memo: Option<Arc<SharedVerdictMemo>>,
    stats: MonitorStats,
    clocks: TierClocks,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats)
            .field("memo", &self.memo.is_some())
            .finish()
    }
}

impl Monitor {
    /// A monitor with the given configuration.
    pub fn new(cfg: MonitorConfig) -> Self {
        Monitor {
            builder: WindowBuilder::new(cfg.window_txns),
            cfg,
            memo: None,
            stats: MonitorStats::default(),
            clocks: TierClocks::default(),
        }
    }

    /// Share a verdict memo (typically across monitors / with the model
    /// checker) so identical window fingerprints escalate once.
    pub fn with_memo(mut self, memo: Arc<SharedVerdictMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Counters so far. Final numbers require [`Monitor::finish`].
    pub fn stats(&self) -> &MonitorStats {
        &self.stats
    }

    /// Ingest one event, sealing and checking a window when full.
    pub fn ingest(&mut self, ev: TapEvent) {
        self.stats.ops_ingested += 1;
        trace::emit(EventKind::MonitorIngest, u64::from(ev.pid.0), 0);
        if self.builder.push(ev) {
            let sealed = self.builder.seal();
            if let Some(w) = sealed {
                self.check_window(&w);
            }
        }
    }

    /// Flush the final (partial) window and return the totals.
    pub fn finish(&mut self) -> MonitorStats {
        if let Some(w) = self.builder.flush() {
            self.check_window(&w);
        }
        self.stats.clone()
    }

    /// Consume `tap` until it is closed **and** drained, then flush.
    /// Returns the totals; `events_dropped` is taken from the tap's
    /// exact drop counter, `wall_ns` covers the whole consumption.
    pub fn run(&mut self, tap: &StmTap) -> MonitorStats {
        let t0 = Instant::now();
        let mut buf: Vec<TapEvent> = Vec::with_capacity(4096);
        loop {
            let depth = tap.queue_depth() as u64;
            if depth > self.stats.max_queue_depth {
                self.stats.max_queue_depth = depth;
            }
            if tap.drain_into(&mut buf, 4096) == 0 {
                if tap.is_closed() && tap.queue_depth() == 0 {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            for ev in buf.drain(..) {
                self.ingest(ev);
            }
        }
        self.stats.events_dropped = tap.dropped();
        self.finish();
        self.stats.wall_ns = t0.elapsed().as_nanos() as u64;
        self.stats.clone()
    }

    /// One-shot mode: run the tiered pipeline on a ready-made history,
    /// returning the verdict (`true` = property holds). Used by the
    /// corpus-agreement tests; counters update as for a sealed window,
    /// but no second chance applies (there is no raced initializer to
    /// blame).
    pub fn check_history(&mut self, h: &History) -> bool {
        self.stats.windows_sealed += 1;
        trace::emit(EventKind::WindowSeal, h.len() as u64, 0);
        let guard = ScopedSpan::enter(&self.clocks.triage, 0);
        let cleared = triage_opacity(h, self.cfg.model.model).cleared();
        let ns = guard.finish();
        self.stats.triage_ns += ns;
        self.stats.triage_window_ns.record(ns);
        if cleared {
            self.stats.triage_cleared += 1;
            trace::emit(EventKind::TriageClear, h.len() as u64, 0);
            return true;
        }
        self.escalate(h)
    }

    fn check_window(&mut self, w: &SealedWindow) {
        self.stats.windows_sealed += 1;
        trace::emit(
            EventKind::WindowSeal,
            w.history.len() as u64,
            w.completed as u64,
        );
        let guard = ScopedSpan::enter(&self.clocks.triage, 0);
        let cleared = triage_opacity(&w.history, self.cfg.model.model).cleared();
        let ns = guard.finish();
        self.stats.triage_ns += ns;
        self.stats.triage_window_ns.record(ns);
        if cleared {
            self.stats.triage_cleared += 1;
            trace::emit(EventKind::TriageClear, w.history.len() as u64, 0);
            return;
        }
        let mut ok = self.escalate(&w.history);
        if !ok {
            if let Some(h2) = w.reseeded() {
                ok = self.escalate(&h2);
            }
        }
        if !ok {
            self.stats.violations += 1;
            trace::emit(
                EventKind::MonitorViolation,
                w.history.len() as u64,
                self.stats.windows_sealed,
            );
        }
    }

    /// Tier 2: the full batch checker, through the shared memo.
    fn escalate(&mut self, h: &History) -> bool {
        self.stats.escalated += 1;
        let fp = h.cache_key();
        trace::emit(EventKind::Escalate, fp, h.len() as u64);
        let guard = ScopedSpan::enter(&self.clocks.escalate, 0);
        if let Some(memo) = &self.memo {
            if let Some(v) = memo.lookup(self.cfg.model.key, self.cfg.kind, fp) {
                self.stats.memo_hits += 1;
                let ns = guard.finish();
                self.stats.escalate_ns += ns;
                self.stats.escalate_window_ns.record(ns);
                return v;
            }
        }
        let v = match (self.cfg.kind, self.cfg.backend) {
            (CheckKind::Opacity, CheckBackend::Dfs) => {
                check_opacity(h, self.cfg.model.model).is_opaque()
            }
            (CheckKind::Opacity, CheckBackend::Sat) => {
                check_opacity_sat(h, self.cfg.model.model).is_opaque()
            }
            (CheckKind::Sgla, CheckBackend::Dfs) => check_sgla(h, self.cfg.model.model).is_sgla(),
            (CheckKind::Sgla, CheckBackend::Sat) => {
                check_sgla_sat(h, self.cfg.model.model).is_sgla()
            }
        };
        if let Some(memo) = &self.memo {
            memo.record(self.cfg.model.key, self.cfg.kind, fp, v);
        }
        let ns = guard.finish();
        self.stats.escalate_ns += ns;
        self.stats.escalate_window_ns.record(ns);
        v
    }
}
