//! Property tests: drop-counter exactness under saturated rings, and
//! monitor/batch agreement on randomly generated histories.

use jungle_core::builder::HistoryBuilder;
use jungle_core::history::History;
use jungle_core::ids::{ProcId, Var};
use jungle_core::opacity::check_opacity;
use jungle_core::registry::registry;
use jungle_core::sgla::check_sgla;
use jungle_mc::CheckKind;
use jungle_monitor::{Monitor, MonitorConfig};
use jungle_obs::{Backpressure, EventRing};
use proptest::prelude::*;
use std::collections::HashMap;

/// One step of the random script: `(proc, kind, var)`.
type Action = (u32, u32, u32);

/// Execute `script` sequentially (one live transaction at a time) and
/// record it as a history: the recorded order is itself legal, so the
/// result is opaque under every bundled model — and any monitor
/// disagreement with the batch checker is a tiering bug, not an input
/// artifact. Mirrors the generator in `core/tests/witness_props.rs`.
fn build_history(script: &[Action]) -> History {
    let mut b = HistoryBuilder::new();
    let mut committed: HashMap<u32, u64> = HashMap::new();
    let mut overlay: HashMap<u32, u64> = HashMap::new();
    let mut live: Option<u32> = None;
    let mut fresh = 1u64;
    for &(proc_raw, kind, var_raw) in script {
        let p = ProcId(proc_raw % 3);
        let var = var_raw % 3;
        if let Some(owner) = live {
            if owner != p.0 {
                continue;
            }
        }
        match kind % 6 {
            0 if live.is_none() => {
                b.start(p);
                live = Some(p.0);
            }
            1 if live == Some(p.0) => {
                b.commit(p);
                committed.extend(overlay.drain());
                live = None;
            }
            2 if live == Some(p.0) => {
                b.abort(p);
                overlay.clear();
                live = None;
            }
            3 => {
                let val = overlay
                    .get(&var)
                    .or_else(|| committed.get(&var))
                    .copied()
                    .unwrap_or(0);
                b.read(p, Var(var), val);
            }
            _ => {
                b.write(p, Var(var), fresh);
                if live.is_some() {
                    overlay.insert(var, fresh);
                } else {
                    committed.insert(var, fresh);
                }
                fresh += 1;
            }
        }
    }
    b.build().expect("sequential script builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ring's accounting is exact under any interleaving of pushes
    /// and pops, at any capacity, with any drop pattern:
    /// `published + dropped == attempts` and the consumer sees exactly
    /// `published` events, in FIFO order of their successful publishes.
    #[test]
    fn ring_accounting_is_exact_under_saturation(
        cap_exp in 1u32..6,
        ops in prop::collection::vec((any::<bool>(), 0u64..1000), 1..200),
    ) {
        let ring: EventRing<u64> = EventRing::new(1 << cap_exp, Backpressure::Drop);
        let mut attempts = 0u64;
        let mut consumed: Vec<u64> = Vec::new();
        let mut accepted: Vec<u64> = Vec::new();
        for (push, val) in ops {
            if push {
                attempts += 1;
                if ring.push(val) {
                    accepted.push(val);
                }
            } else if let Some(v) = ring.pop() {
                consumed.push(v);
            }
        }
        prop_assert_eq!(ring.published() + ring.dropped(), attempts);
        prop_assert_eq!(ring.published(), accepted.len() as u64);
        let mut rest = Vec::new();
        ring.drain_into(&mut rest, usize::MAX);
        consumed.extend(rest);
        // Everything accepted is eventually consumed, in order.
        prop_assert_eq!(consumed, accepted);
    }

    /// Monitor and batch checker agree on random sequential histories
    /// (all opaque by construction) for every registry entry and both
    /// check kinds — and triage proves its keep by clearing them
    /// without escalation.
    #[test]
    fn monitor_agrees_on_random_sequential_histories(
        script in prop::collection::vec((0u32..3, 0u32..6, 0u32..3), 0..30),
    ) {
        let h = build_history(&script);
        for entry in registry() {
            for kind in [CheckKind::Opacity, CheckKind::Sgla] {
                let batch = match kind {
                    CheckKind::Opacity => check_opacity(&h, entry.model).is_opaque(),
                    CheckKind::Sgla => check_sgla(&h, entry.model).is_sgla(),
                };
                let mut mon = Monitor::new(MonitorConfig::new().model(entry).kind(kind));
                prop_assert_eq!(mon.check_history(&h), batch);
                prop_assert!(batch, "sequential histories are opaque/SGLA");
                prop_assert_eq!(mon.stats().escalated, 0,
                    "triage must clear sequential histories under {}", entry.key);
            }
        }
    }

    /// A junk read (value nobody wrote) must surface as a violation
    /// through the whole tiered pipeline, never be triage-cleared.
    #[test]
    fn monitor_rejects_junk_reads(
        script in prop::collection::vec((0u32..3, 0u32..6, 0u32..3), 1..20),
        var in 0u32..3,
    ) {
        let mut b = HistoryBuilder::new();
        let h = build_history(&script);
        for op in h.ops() {
            b.op(op.proc, op.op.clone());
        }
        b.read(ProcId(2), Var(var), 999_999);
        let h = b.build().unwrap();
        let mut mon = Monitor::new(MonitorConfig::new());
        prop_assert!(!mon.check_history(&h));
        prop_assert_eq!(mon.stats().escalated, 1);
    }
}
