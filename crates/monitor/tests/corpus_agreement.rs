//! Agreement: the monitor's tiered pipeline must reach exactly the
//! verdict the batch DFS checker reaches, on every litmus outcome and
//! stress history, under every registry model, for both check kinds.
//!
//! This is the contract that makes the triage tier trustworthy: triage
//! may only *clear* histories the batch checker would accept (the
//! soundness construction in `jungle_core::triage`), and escalation
//! *is* the batch checker — so any disagreement here means the tiering
//! broke the semantics.

use jungle_core::history::History;
use jungle_core::opacity::check_opacity;
use jungle_core::registry::registry;
use jungle_core::sgla::check_sgla;
use jungle_litmus::figures::all_litmus;
use jungle_litmus::stress::{chain_history, wide_history, wide_unsat_history};
use jungle_mc::{CheckKind, SharedVerdictMemo};
use jungle_monitor::{Monitor, MonitorConfig};
use std::sync::Arc;

fn corpus() -> Vec<(String, History)> {
    let mut out = Vec::new();
    for l in all_litmus() {
        for o in l.outcomes {
            out.push((format!("{}/{}", l.name, o.label), o.history));
        }
    }
    out.push(("stress/chain-4".into(), chain_history(4)));
    out.push(("stress/wide-3-first".into(), wide_history(3, 0)));
    out.push(("stress/wide-3-last".into(), wide_history(3, 2)));
    out.push(("stress/wide-unsat-3".into(), wide_unsat_history(3)));
    out
}

#[test]
fn monitor_agrees_with_batch_checker_on_full_corpus() {
    let memo = Arc::new(SharedVerdictMemo::new());
    for entry in registry() {
        for kind in [CheckKind::Opacity, CheckKind::Sgla] {
            let mut mon =
                Monitor::new(MonitorConfig::new().model(entry).kind(kind)).with_memo(memo.clone());
            for (name, h) in corpus() {
                let batch = match kind {
                    CheckKind::Opacity => check_opacity(&h, entry.model).is_opaque(),
                    CheckKind::Sgla => check_sgla(&h, entry.model).is_sgla(),
                };
                let online = mon.check_history(&h);
                assert_eq!(
                    online, batch,
                    "monitor disagrees with batch on {name} under {} ({kind:?})",
                    entry.key
                );
            }
            let s = mon.stats().clone();
            assert_eq!(
                s.triage_cleared + s.escalated,
                s.windows_sealed,
                "every window either cleared or escalated"
            );
        }
    }
}

#[test]
fn sat_escalation_tier_agrees_with_dfs_tier() {
    use jungle_mc::CheckBackend;
    // No memo: each monitor must reach its verdict through its own
    // escalation engine, and the two engines must never diverge.
    for entry in registry() {
        for kind in [CheckKind::Opacity, CheckKind::Sgla] {
            let mut dfs = Monitor::new(MonitorConfig::new().model(entry).kind(kind));
            let mut sat = Monitor::new(
                MonitorConfig::new()
                    .model(entry)
                    .kind(kind)
                    .backend(CheckBackend::Sat),
            );
            for (name, h) in corpus() {
                assert_eq!(
                    dfs.check_history(&h),
                    sat.check_history(&h),
                    "escalation backends disagree on {name} under {} ({kind:?})",
                    entry.key
                );
            }
            assert_eq!(dfs.stats().escalated, sat.stats().escalated);
        }
    }
}

#[test]
fn memo_absorbs_repeat_escalations() {
    let memo = Arc::new(SharedVerdictMemo::new());
    let entry = &registry()[0]; // SC
    let h = wide_unsat_history(3); // never clears triage, never opaque
    let mut mon = Monitor::new(MonitorConfig::new().model(entry)).with_memo(memo.clone());
    assert!(!mon.check_history(&h));
    assert!(!mon.check_history(&h));
    let s = mon.stats().clone();
    assert_eq!(s.escalated, 2);
    assert_eq!(s.memo_hits, 1, "second escalation is a fingerprint hit");
}
