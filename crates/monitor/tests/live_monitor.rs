//! End-to-end: real STM threads publish through the tap while a
//! monitor thread checks the stream live.

use jungle_core::ids::ProcId;
use jungle_mc::SharedVerdictMemo;
use jungle_monitor::{Monitor, MonitorConfig};
use jungle_obs::Backpressure;
use jungle_stm::{atomically, Ctx, GlobalLockStm, StmTap, StrongStm, TmAlgo};
use std::sync::Arc;

/// `threads` workers each run `txns` read-modify-write transactions on
/// their own variable — disjoint footprints, so every window is opaque
/// and cross-window reads are justified by the tracked seeds alone.
fn drive<A: TmAlgo + Send + Sync + 'static>(tm: Arc<A>, tap: Arc<StmTap>, threads: u32, txns: u64) {
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let tm = tm.clone();
            let tap = tap.clone();
            std::thread::spawn(move || {
                let mut cx = Ctx::new(ProcId(t), None).with_tap(tap);
                for _ in 0..txns {
                    atomically(&*tm, &mut cx, |tx| {
                        let v = tx.read(t as usize)?;
                        tx.write(t as usize, v + 1)
                    });
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn live_stream_is_clean_under_block_policy() {
    let tap = Arc::new(StmTap::new(1 << 12, Backpressure::Block));
    let tm = Arc::new(GlobalLockStm::new(8));
    let memo = Arc::new(SharedVerdictMemo::new());
    let mut mon = Monitor::new(MonitorConfig::new().window(16)).with_memo(memo);

    let consumer = {
        let tap = tap.clone();
        std::thread::spawn(move || mon.run(&tap))
    };
    drive(tm, tap.clone(), 4, 200);
    tap.close();
    let stats = consumer.join().unwrap();

    // Block policy: nothing lost, every published event ingested.
    assert_eq!(stats.events_dropped, 0);
    assert_eq!(stats.ops_ingested, tap.published());
    // 800 committed txns at window 16 → at least 50 windows.
    assert!(
        stats.windows_sealed >= 50,
        "sealed {}",
        stats.windows_sealed
    );
    assert_eq!(stats.violations, 0, "disjoint workload must be clean");
    assert!(
        stats.triage_cleared >= stats.windows_sealed / 2,
        "triage must clear most disjoint-footprint windows: {stats:?}"
    );
}

#[test]
fn strong_stm_stream_is_clean_too() {
    let tap = Arc::new(StmTap::new(1 << 12, Backpressure::Block));
    let tm = Arc::new(StrongStm::new(8));
    let mut mon = Monitor::new(MonitorConfig::new().window(8));
    let consumer = {
        let tap = tap.clone();
        std::thread::spawn(move || mon.run(&tap))
    };
    drive(tm, tap.clone(), 4, 100);
    tap.close();
    let stats = consumer.join().unwrap();
    assert_eq!(stats.events_dropped, 0);
    assert_eq!(stats.violations, 0);
    assert!(stats.windows_sealed >= 1);
    assert_eq!(stats.ops_ingested, tap.published());
}

#[test]
fn drop_policy_accounts_exactly_even_when_saturated() {
    // Tiny ring, no consumer while producing: most events drop, but
    // the ledger must balance to the last event.
    let tap = Arc::new(StmTap::new(8, Backpressure::Drop));
    let tm = Arc::new(GlobalLockStm::new(4));
    drive(tm, tap.clone(), 2, 50);
    tap.close();
    let mut mon = Monitor::new(MonitorConfig::new().window(4));
    let stats = mon.run(&tap);
    assert!(stats.events_dropped > 0, "ring of 8 must saturate");
    assert_eq!(stats.ops_ingested, tap.published());
    assert_eq!(stats.events_dropped, tap.dropped());
    // Exactness: every publish attempt is either ingested or counted
    // dropped — never silently lost.
    assert_eq!(
        stats.ops_ingested + stats.events_dropped,
        tap.published() + tap.dropped()
    );
}
