//! # jungle-bench — the benchmark and report harness
//!
//! The paper's "evaluation" consists of (a) the verdicts of its figures
//! and theorems, which the `report` binary regenerates as one table,
//! and (b) the practical claim of §6.1 — that parametrizing correctness
//! by a weaker memory model lets a TM shed non-transactional
//! instrumentation — which the Criterion benches quantify:
//!
//! | bench target | experiment (DESIGN.md) | measures |
//! |---|---|---|
//! | `nontxn_ops` | E1, E2, A1, A2 | per-operation cost of non-transactional reads/writes per STM |
//! | `txn_throughput` | E3 | committed-transaction cost vs. size and mix per STM |
//! | `mixed` | E4 | end-to-end workload cost vs. transactional fraction |
//! | `checker` | E5, F1–F3 | parametrized-opacity checking cost vs. history size |
//! | `mc` | F5, T3 | violation-search and exhaustive-sweep cost |
//!
//! Helpers shared by the benches live here.

#![warn(missing_docs)]

use jungle_stm::api::TmAlgo;
use jungle_stm::{GlobalLockStm, StrongStm, Tl2Stm, VersionedStm, WriteTxnStm};

/// Every STM under test, freshly constructed over `n_vars` variables,
/// in presentation order.
pub fn all_stms(n_vars: usize) -> Vec<Box<dyn TmAlgo + Send + Sync>> {
    vec![
        Box::new(GlobalLockStm::new(n_vars)),
        Box::new(WriteTxnStm::new(n_vars)),
        Box::new(VersionedStm::new(n_vars)),
        Box::new(StrongStm::new(n_vars)),
        Box::new(StrongStm::new_optimized(n_vars)),
        Box::new(Tl2Stm::new(n_vars)),
    ]
}

/// The STM display names, aligned with [`all_stms`].
pub fn stm_names() -> Vec<&'static str> {
    vec![
        "global-lock",
        "write-txn",
        "versioned",
        "strong",
        "strong-optimized",
        "tl2",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_align_with_instances() {
        let stms = all_stms(4);
        let names = stm_names();
        assert_eq!(stms.len(), names.len());
        for (tm, name) in stms.iter().zip(names) {
            assert_eq!(tm.name(), name);
        }
    }
}
