//! The reproduction report: regenerates every figure verdict and
//! theorem experiment of the paper in one run and prints the tables
//! that EXPERIMENTS.md records.
//!
//! With `--json`, stdout carries **exactly one JSON object**
//! (`{"rows": [...], "metrics": {...}}`) and nothing else; the human
//! tables are suppressed. The `metrics` section aggregates the
//! observability counters: opacity-checker search statistics per litmus
//! figure, per-STM runtime counters from the theorem sweeps, and the
//! model-checker exploration totals.
//!
//! Run with: `cargo run --release -p jungle-bench --bin report`

use jungle_core::model::all_models;
use jungle_core::opacity::check_opacity_traced;
use jungle_core::par::ParallelConfig;
use jungle_core::registry::registry;
use jungle_litmus::figures::all_litmus;
use jungle_mc::algos::{
    GlobalLockTm, LazyTl2Tm, StrongTm, TmAlgo as McAlgo, VersionedTm, WriteTxnTm,
};
use jungle_mc::cost::measure;
use jungle_mc::theorems::{all_fixed_experiments, matched_zoo};
use jungle_mc::{SharedVerdictMemo, SweepSeeds};
use jungle_obs::{Json, MetricsSnapshot, ToJson};

struct Row {
    section: &'static str,
    id: String,
    expected: &'static str,
    observed: String,
    pass: bool,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("section", self.section.into())
            .push("id", self.id.as_str().into())
            .push("expected", self.expected.into())
            .push("observed", self.observed.as_str().into())
            .push("pass", self.pass.into());
        j
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut rows: Vec<Row> = Vec::new();
    let mut metrics = MetricsSnapshot::new();

    // ── Figures 1–2: litmus verdict tables ────────────────────────
    if !json {
        println!("════ Figures 1–2: litmus verdicts per memory model ════\n");
    }
    for litmus in all_litmus() {
        if !json {
            println!("{} — {}", litmus.name, litmus.question);
            print!("  {:<14}", "outcome");
            for m in all_models() {
                print!("{:>9}", m.name());
            }
            println!();
        }
        for o in &litmus.outcomes {
            if !json {
                print!("  {:<14}", o.label);
            }
            for m in all_models() {
                let (verdict, stats) = check_opacity_traced(&o.history, m);
                metrics.record_checker(litmus.name, &stats);
                let ok = verdict.is_opaque();
                if !json {
                    print!("{:>9}", if ok { "allowed" } else { "✗" });
                }
                rows.push(Row {
                    section: "figures",
                    id: format!("{}/{}/{}", litmus.name, o.label, m.name()),
                    expected: "(see paper)",
                    observed: if ok {
                        "allowed".into()
                    } else {
                        "forbidden".into()
                    },
                    pass: true,
                });
            }
            if !json {
                println!();
            }
        }
        if !json {
            println!();
        }
    }

    // ── Instrumentation taxonomy + measured instruction costs ─────
    if !json {
        println!("════ TM algorithms: instrumentation & measured instruction cost ════\n");
        println!(
            "  {:<18} {:<34} {:>8} {:>8} {:>8} {:>8}",
            "algorithm", "class (§4)", "nt-rd", "nt-wr", "tx-rd", "commit"
        );
        let strong = StrongTm::new();
        let strong_opt = StrongTm::optimized();
        let algos: [(&dyn McAlgo, &str); 6] = [
            (&GlobalLockTm, "Fig. 6 / Thm 3, 7"),
            (&WriteTxnTm, "Thm 4"),
            (&VersionedTm, "Thm 5"),
            (&strong, "§6.1"),
            (&strong_opt, "§6.1 optimized"),
            (&LazyTl2Tm, "weak baseline"),
        ];
        for (algo, _ref) in algos {
            let c = measure(algo);
            println!(
                "  {:<18} {:<34} {:>8} {:>8} {:>8} {:>8}",
                algo.name(),
                algo.instrumentation().to_string(),
                c.nt_read.max_instrs,
                c.nt_write.max_instrs,
                c.txn_read.max_instrs,
                c.commit.max_instrs,
            );
        }
        println!("  (max memory instructions per operation, uncontended standard program)");
        println!();
    }

    // ── Lemma 1 / Theorems 1–5, 7 on the simulator ────────────────
    // One verdict memo shared across every sweep in the report: the
    // constructions reuse the same litmus programs under the same
    // models, so repeated per-history verdicts come from the memo.
    let memo = SharedVerdictMemo::new();
    let cfg = ParallelConfig::default();
    if !json {
        println!("════ Lemma 1 & Theorems (simulator experiments) ════\n");
    }
    for e in all_fixed_experiments() {
        let t0 = std::time::Instant::now();
        let r = e.run_shared(SweepSeeds::new(0, 2_000), 8_000, &cfg, &memo);
        let dt = t0.elapsed();
        metrics.record_stm(e.algo.name(), &r.tm);
        metrics.record_mc(&r.stats);
        if !json {
            println!(
                "  {:<22} {:<36} {:>6} ({:.0?})",
                e.id,
                e.paper_ref,
                if r.passed { "PASS" } else { "FAIL" },
                dt
            );
        }
        rows.push(Row {
            section: "theorems",
            id: e.id.clone(),
            expected: e.paper_ref,
            observed: r.detail,
            pass: r.passed,
        });
    }

    // ── Matched-model zoo: five STMs × every registry entry ───────
    // Descriptive cross-validation: each cell samples the STM on the
    // entry's execution semantics and checks opacity parametrized by
    // the same entry's model. (The fixed experiments above keep the
    // paper's SC-execution setting; this table is what the unified
    // registry adds.)
    if !json {
        println!("\n════ Matched-model zoo: STM × registry entry (execute X, check X) ════\n");
        print!("  {:<18}", "algorithm");
        for e in registry() {
            print!("{:>9}", e.key);
        }
        println!();
    }
    let zoo = matched_zoo(SweepSeeds::new(0, 30), 8_000, &cfg, &memo);
    {
        let mut last_algo = "";
        for z in &zoo {
            metrics.record_mc(&z.stats);
            if !json {
                if z.algo != last_algo {
                    if !last_algo.is_empty() {
                        println!();
                    }
                    print!("  {:<18}", z.algo);
                    last_algo = z.algo;
                }
                print!("{:>9}", if z.ok { "opaque" } else { "✗" });
            }
            rows.push(Row {
                section: "zoo",
                id: format!("zoo/{}/{}", z.algo, z.model),
                expected: "(descriptive)",
                observed: if z.ok {
                    "opaque".into()
                } else {
                    "violated".into()
                },
                pass: true,
            });
        }
        if !json {
            println!("\n  (30 sampled schedules per cell; matched execution and checker model)");
        }
    }

    let failed: Vec<&Row> = rows.iter().filter(|r| !r.pass).collect();
    if json {
        let mut out = Json::obj();
        let mut memo_j = Json::obj();
        memo_j
            .push("hits", memo.hits().into())
            .push("lookups", memo.lookups().into())
            .push("entries", (memo.len() as u64).into());
        out.push(
            "rows",
            Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
        )
        .push("metrics", metrics.to_json())
        .push("shared_memo", memo_j);
        println!("{out}");
        if !failed.is_empty() {
            eprintln!("{} report checks failed", failed.len());
            std::process::exit(1);
        }
    } else {
        println!();
        if failed.is_empty() {
            println!("All {} checks passed.", rows.len());
        } else {
            println!("{} FAILURES:", failed.len());
            for f in failed {
                println!("  {}: {}", f.id, f.observed);
            }
            std::process::exit(1);
        }
    }
}
