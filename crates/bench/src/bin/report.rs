//! The reproduction report: regenerates every figure verdict and
//! theorem experiment of the paper in one run and prints the tables
//! that EXPERIMENTS.md records.
//!
//! With `--json`, stdout carries **exactly one JSON object**
//! (`{"rows": [...], "metrics": {...}}`) and nothing else; the human
//! tables are suppressed. The `metrics` section aggregates the
//! observability counters: opacity-checker search statistics per litmus
//! figure, per-STM runtime counters from the theorem sweeps, and the
//! model-checker exploration totals.
//!
//! Further flags:
//!
//! * `--trace <out.json>` — install the flight recorder for the whole
//!   run (plus a small concurrent STM smoke so the `stm` category has
//!   events) and export a Chrome-trace-event file loadable in Perfetto.
//! * `--explain [id]` — re-find each Theorem 1 counterexample (or just
//!   the experiment named by `id`) and print the explainer narrative:
//!   timeline, irreconcilable pair, class. An unknown id is a named
//!   error listing the valid experiment ids.
//! * `--record <dir> [id]` — capture one deterministic schedule log per
//!   Theorem 1 construction (`<dir>/<id>.json`), delta-debug it to a
//!   minimal still-violating log (`<dir>/<id>.min.json`), and
//!   replay-verify both. With an optional experiment `id`, record just
//!   that experiment; an unknown id is a named error listing the valid
//!   ids. Adds a `replay` section to `--json` output.
//! * `--monitor` — drive every STM with live transactional traffic
//!   through the event tap while a streaming monitor thread checks the
//!   stream with the tiered (triage → escalate) pipeline. Prints the
//!   per-STM ingest/triage/escalation table, adds a `monitor` section
//!   to `--json` output, and records totals in the ledger entry.
//! * `--profile` — install the hierarchical phase profiler for the
//!   whole run and emit a `profile` section: the phase tree with
//!   self/total time and per-phase latency histograms, the run-wide
//!   DPOR waste attribution (blocked probes by depth, race-pair heat,
//!   worker busy/steal/idle lanes), and — with `--monitor` — the
//!   merged per-window check-latency histogram. The blocked-probe
//!   attribution must sum exactly to the explorers' independent
//!   blocked counters, or the run fails.
//! * `--sat` — cross-validate the CDCL serialization-order backend
//!   against the DFS checkers on the full litmus corpus (every registry
//!   entry, both check kinds; every SAT positive re-certified through
//!   the DFS leaf), then race the two engines on the wide-UNSAT stress
//!   family to locate the crossover size. Adds a `sat` section to
//!   `--json` output and records solver totals in the ledger entry.
//! * `--cnf <dir>` — export each litmus outcome's serialization-order
//!   encoding as a DIMACS file (one per registry entry and check kind),
//!   with a comment header naming the experiment, model key and kind.
//! * `--replay <file>` — re-execute a saved schedule log, verify the
//!   recorded history fingerprint, and exit nonzero on divergence (a
//!   focused mode: the full report is skipped). With `--explain`, also
//!   narrate the replayed counterexample.
//! * `--compare` — diff this run's headline counters against the last
//!   ledger entry and exit nonzero on regressions beyond tolerances.
//! * `--ledger <path>` — ledger location (default
//!   `.jungle/ledger.jsonl`). Every run appends one entry.
//! * `--memo-dir <path>` — verdict-memo persistence directory (default
//!   `.jungle/memo`), preloaded on start and rewritten on exit.
//!
//! Run with: `cargo run --release -p jungle-bench --bin report`

use jungle_core::model::all_models;
use jungle_core::opacity::check_opacity_traced;
use jungle_core::par::ParallelConfig;
use jungle_core::registry::registry;
use jungle_litmus::figures::all_litmus;
use jungle_mc::algos::{
    GlobalLockTm, LazyTl2Tm, StrongTm, TmAlgo as McAlgo, VersionedTm, WriteTxnTm,
};
use jungle_mc::cost::measure;
use jungle_mc::explain::{explain_experiment, explain_trace};
use jungle_mc::theorems::{
    all_fixed_experiments, experiment_by_id, experiment_ids, matched_zoo, thm1_suite, Experiment,
};
use jungle_mc::{
    check_all_traces_shared, class_sweep_dpor, class_sweep_enumerative, SharedVerdictMemo,
    SweepSeeds,
};
use jungle_monitor::{Monitor, MonitorConfig};
use jungle_obs::ledger::{self, LedgerEntry, Tolerances};
use jungle_obs::trace::{self as flight, FlightRecorder};
use jungle_obs::{
    profile, Backpressure, DporStats, Json, MetricsSnapshot, MonitorStats, Profiler, SatStats,
    ToJson,
};
use jungle_replay::{record_experiment, replay, shrink, ScheduleLog};
use jungle_stm::StmTap;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

struct Row {
    section: &'static str,
    id: String,
    expected: &'static str,
    observed: String,
    pass: bool,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("section", self.section.into())
            .push("id", self.id.as_str().into())
            .push("expected", self.expected.into())
            .push("observed", self.observed.as_str().into())
            .push("pass", self.pass.into());
        j
    }
}

struct Args {
    json: bool,
    explain: bool,
    /// `--explain <id>`: narrate only this bundled experiment.
    explain_id: Option<String>,
    compare: bool,
    monitor: bool,
    /// `--profile`: install the phase profiler and emit the `profile`
    /// section (phase tree, DPOR waste attribution, window latencies).
    profile: bool,
    trace: Option<PathBuf>,
    /// `--record <dir>`: capture + shrink Theorem 1 schedule logs.
    record: Option<PathBuf>,
    /// `--record <dir> <id>`: record only this bundled experiment.
    record_id: Option<String>,
    /// `--replay <file>`: focused replay mode, skipping the report.
    replay: Option<PathBuf>,
    /// `--sat`: DFS-vs-SAT cross-validation + crossover benchmark.
    sat: bool,
    /// `--cnf <dir>`: DIMACS export of the corpus order encodings.
    cnf: Option<PathBuf>,
    ledger: PathBuf,
    memo_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        json: false,
        explain: false,
        explain_id: None,
        compare: false,
        monitor: false,
        profile: false,
        trace: None,
        record: None,
        record_id: None,
        replay: None,
        sat: false,
        cnf: None,
        ledger: PathBuf::from(".jungle/ledger.jsonl"),
        memo_dir: PathBuf::from(".jungle/memo"),
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a path argument");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--json" => args.json = true,
            "--explain" => {
                args.explain = true;
                // Optional value: the id of one bundled experiment.
                if let Some(next) = it.peek() {
                    if !next.starts_with("--") {
                        args.explain_id = it.next();
                    }
                }
            }
            "--compare" => args.compare = true,
            "--monitor" => args.monitor = true,
            "--profile" => args.profile = true,
            "--trace" => args.trace = Some(PathBuf::from(value("--trace"))),
            "--record" => {
                args.record = Some(PathBuf::from(value("--record")));
                // Optional second value: one bundled experiment id.
                if let Some(next) = it.peek() {
                    if !next.starts_with("--") {
                        args.record_id = it.next();
                    }
                }
            }
            "--replay" => args.replay = Some(PathBuf::from(value("--replay"))),
            "--sat" => args.sat = true,
            "--cnf" => args.cnf = Some(PathBuf::from(value("--cnf"))),
            "--ledger" => args.ledger = PathBuf::from(value("--ledger")),
            "--memo-dir" => args.memo_dir = PathBuf::from(value("--memo-dir")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Resolve an `--explain`/`--replay` experiment id, or exit with a
/// named error listing every valid id.
fn resolve_experiment(id: &str) -> Experiment {
    experiment_by_id(id).unwrap_or_else(|| {
        eprintln!("error: no bundled experiment with id '{id}'");
        eprintln!("valid ids:");
        for valid in experiment_ids() {
            eprintln!("  {valid}");
        }
        std::process::exit(2);
    })
}

/// `report --replay <file>`: re-execute a saved schedule log on the
/// experiment it was recorded against, verify the recorded history
/// fingerprint, and (with `--explain`) narrate the replayed
/// counterexample. Exits nonzero on divergence or a fingerprint
/// mismatch.
fn replay_mode(args: &Args, path: &std::path::Path) -> ! {
    let log = ScheduleLog::load(path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let Some(id) = log.experiment.clone() else {
        eprintln!(
            "error: {} names no bundled experiment; cannot resolve a program to replay on",
            path.display()
        );
        std::process::exit(2);
    };
    let exp = resolve_experiment(&id);
    let out = replay(&log, &exp);
    let mut j = Json::obj();
    j.push("file", path.display().to_string().as_str().into())
        .push("experiment", id.as_str().into())
        .push("model", log.model.as_str().into())
        .push("decisions", log.decisions.len().into())
        .push("recorded_fingerprint", log.fingerprint.into())
        .push("replayed_fingerprint", out.fingerprint.into())
        .push("completed", out.completed.into())
        .push("matches", out.matches.into())
        .push("violating", out.violating.into())
        .push("steps", out.steps.into());
    if let Some(d) = out.divergence {
        let mut dj = Json::obj();
        dj.push("step", d.step.into())
            .push("expected_options", d.expected_options.into())
            .push("actual_options", d.actual_options.into())
            .push("expected_action", d.expected_action.into())
            .push("actual_action", d.actual_action.into());
        j.push("divergence", dj);
    }
    let explanation = if args.explain {
        out.trace
            .as_ref()
            .and_then(|t| explain_trace(t, exp.entry.model, exp.kind).ok())
    } else {
        None
    };
    if let Some(ex) = &explanation {
        j.push(
            "class",
            match ex.class {
                Some(c) => c.name().into(),
                None => Json::Null,
            },
        );
    }
    if args.json {
        println!("{j}");
    } else {
        println!(
            "replayed {} on {} ({} decisions): {}",
            path.display(),
            id,
            log.decisions.len(),
            if out.matches {
                "fingerprint reproduced"
            } else if !out.completed {
                "run truncated"
            } else {
                "MISMATCH"
            }
        );
        if let Some(d) = out.divergence {
            println!(
                "  first divergence at step {}: expected action {:#x} of {} options, got {:#x} of {}",
                d.step, d.expected_action, d.expected_options, d.actual_action, d.actual_options
            );
        }
        println!(
            "  recorded fingerprint {:#x}, replayed {:#x}, violating: {}",
            log.fingerprint, out.fingerprint, out.violating
        );
        if let Some(ex) = &explanation {
            println!("\n{}", ex.render());
        }
    }
    std::process::exit(if out.matches { 0 } else { 1 });
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// A short concurrent run of two real STMs so a traced report records
/// `stm`-category events (txn begin/commit/abort, CAS failures). The
/// strong STM's encounter-time locking under contention produces aborts
/// and CAS failures reliably at this iteration count.
fn stm_smoke() {
    use jungle_core::ids::ProcId;
    use jungle_stm::{atomically, Ctx, GlobalLockStm, StrongStm};
    const VARS: usize = 4;
    const THREADS: u32 = 4;
    const ITERS: u64 = 200;
    let global = GlobalLockStm::new(VARS);
    let strong = StrongStm::new(VARS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (global, strong) = (&global, &strong);
            s.spawn(move || {
                let mut cx = Ctx::new(ProcId(t), None);
                for i in 0..ITERS {
                    let var = (i as usize + t as usize) % VARS;
                    atomically(global, &mut cx, |tx| {
                        let v = tx.read(var)?;
                        tx.write(var, v + 1)
                    });
                    atomically(strong, &mut cx, |tx| {
                        let v = tx.read(var)?;
                        tx.write((var + 1) % VARS, v + 1)
                    });
                }
            });
        }
    });
}

/// `--monitor`: drive every STM with live transactional traffic (4
/// threads, each running read-modify-write transactions on its own
/// variable) through a blocking event tap while a monitor thread
/// checks the stream online. Returns the per-STM JSON entries and the
/// aggregate stats.
///
/// The disjoint per-thread footprint makes every window provably
/// opaque, so this sweep measures the monitor's steady state: the
/// triage tier should clear (nearly) everything, and violations or
/// drops are hard failures.
fn monitor_sweep(json: bool, rows: &mut Vec<Row>) -> (Vec<Json>, MonitorStats) {
    use jungle_core::ids::ProcId;
    use jungle_stm::{atomically, Ctx};
    const THREADS: u32 = 4;
    const TXNS: u64 = 11_000;
    const WINDOW: usize = 64;

    if !json {
        println!("\n════ Streaming monitor: live traffic through the tiered checker ════\n");
        println!(
            "  {:<18} {:>9} {:>8} {:>9} {:>6} {:>5} {:>6} {:>8}",
            "algorithm", "ops", "windows", "cleared%", "escal", "viol", "drops", "Mops/s"
        );
    }
    let memo = Arc::new(SharedVerdictMemo::new());
    let mut total = MonitorStats::default();
    let mut entries = Vec::new();
    for tm in jungle_bench::all_stms(64) {
        let tap = Arc::new(StmTap::new(1 << 14, Backpressure::Block));
        let mut mon = Monitor::new(MonitorConfig::new().window(WINDOW)).with_memo(memo.clone());
        let consumer = {
            let tap = tap.clone();
            std::thread::spawn(move || mon.run(&tap))
        };
        let tm_ref: &dyn jungle_stm::TmAlgo = tm.as_ref();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let tap = tap.clone();
                s.spawn(move || {
                    let mut cx = Ctx::new(ProcId(t), None).with_tap(tap);
                    for _ in 0..TXNS {
                        atomically(tm_ref, &mut cx, |tx| {
                            let v = tx.read(t as usize)?;
                            tx.write(t as usize, v + 1)
                        });
                    }
                });
            }
        });
        tap.close();
        let stats = consumer.join().expect("monitor consumer thread");
        let cleared_pct = if stats.windows_sealed == 0 {
            100.0
        } else {
            100.0 * stats.triage_cleared as f64 / stats.windows_sealed as f64
        };
        if !json {
            println!(
                "  {:<18} {:>9} {:>8} {:>8.1}% {:>6} {:>5} {:>6} {:>8.2}",
                tm.name(),
                stats.ops_ingested,
                stats.windows_sealed,
                cleared_pct,
                stats.escalated,
                stats.violations,
                stats.events_dropped,
                stats.ops_per_sec() / 1e6,
            );
        }
        let pass = stats.violations == 0 && stats.events_dropped == 0;
        rows.push(Row {
            section: "monitor",
            id: format!("monitor/{}", tm.name()),
            expected: "0 violations, 0 drops",
            observed: format!(
                "{} ops, {} windows, {} escalated, {} violations, {} dropped",
                stats.ops_ingested,
                stats.windows_sealed,
                stats.escalated,
                stats.violations,
                stats.events_dropped
            ),
            pass,
        });
        let mut j = Json::obj();
        j.push("stm", tm.name().into())
            .push("stats", stats.to_json());
        entries.push(j);
        total.absorb(&stats);
    }
    if !json {
        println!(
            "  (4 threads × {TXNS} disjoint read-modify-write txns per STM, window {WINDOW}, blocking tap)"
        );
    }
    (entries, total)
}

/// `--sat`: cross-validate the CDCL serialization-order backend
/// against the DFS checkers over the full litmus corpus (every
/// registry entry, both check kinds), then race the two engines on the
/// wide-UNSAT stress family — the shape whose order space is `p!` but
/// whose infeasibility the SAT backend refutes with a single
/// empty-core probe — to locate the first size where SAT wins
/// wall-clock. Returns the JSON section and the aggregated solver
/// stats.
fn sat_sweep(json: bool, rows: &mut Vec<Row>) -> (Json, SatStats) {
    use jungle_core::encode::{check_opacity_sat_traced, check_sgla_sat_traced};
    use jungle_core::model::Sc;
    use jungle_core::opacity::check_opacity;
    use jungle_core::sgla::check_sgla;
    use jungle_litmus::stress::wide_unsat_history;

    let mut total = SatStats::default();
    let mut checked = 0u64;
    let mut positives = 0u64;
    let mut certified = 0u64;
    let mut disagreements: Vec<String> = Vec::new();

    if !json {
        println!("\n════ SAT backend: DFS vs CDCL verdicts (litmus × registry × kind) ════\n");
        println!(
            "  {:<26} {:>7} {:>7} {:>9} {:>10}",
            "history", "checks", "agree", "positive", "certified"
        );
    }
    for litmus in all_litmus() {
        for o in &litmus.outcomes {
            let label = format!("{}/{}", litmus.name, o.label);
            let (mut n, mut agree, mut pos, mut cert) = (0u64, 0u64, 0u64, 0u64);
            for e in registry() {
                let dfs = check_opacity(&o.history, e.model).is_opaque();
                let (sat, st) = check_opacity_sat_traced(&o.history, e.model);
                total.absorb(&st);
                n += 1;
                if dfs == sat.is_opaque() {
                    agree += 1;
                } else {
                    disagreements.push(format!("{label}/{}/opacity", e.key));
                }
                if sat.is_opaque() {
                    pos += 1;
                    cert += st.certified;
                }
                let dfs = check_sgla(&o.history, e.model).is_sgla();
                let (sat, st) = check_sgla_sat_traced(&o.history, e.model);
                total.absorb(&st);
                n += 1;
                if dfs == sat.is_sgla() {
                    agree += 1;
                } else {
                    disagreements.push(format!("{label}/{}/sgla", e.key));
                }
                if sat.is_sgla() {
                    pos += 1;
                    cert += st.certified;
                }
            }
            checked += n;
            positives += pos;
            certified += cert;
            if !json {
                println!("  {label:<26} {n:>7} {agree:>7} {pos:>9} {cert:>10}");
            }
        }
    }
    let agreement = disagreements.is_empty();
    rows.push(Row {
        section: "sat",
        id: "sat/agreement".into(),
        expected: "identical verdicts; every positive certified",
        observed: format!(
            "{checked} checks, {} disagreements, {certified}/{positives} positives certified",
            disagreements.len()
        ),
        pass: agreement && certified == positives,
    });

    // Crossover: the DFS checker enumerates serialization orders of the
    // wide-UNSAT family (all infeasible), while the SAT backend's first
    // CEGAR round discovers the empty core and refutes outright.
    let mut points: Vec<Json> = Vec::new();
    let mut crossover_at: Option<u64> = None;
    if !json {
        println!("\n  wide-UNSAT crossover (SC, opacity):");
        println!(
            "    {:>3} {:>12} {:>12} {:>8}",
            "p", "dfs µs", "sat µs", "winner"
        );
    }
    for p in 2..=6usize {
        let h = wide_unsat_history(p);
        let t0 = std::time::Instant::now();
        let dfs = check_opacity(&h, &Sc).is_opaque();
        let dfs_ns = t0.elapsed().as_nanos() as u64;
        let t1 = std::time::Instant::now();
        let (sat, st) = check_opacity_sat_traced(&h, &Sc);
        let sat_ns = t1.elapsed().as_nanos() as u64;
        total.absorb(&st);
        if dfs != sat.is_opaque() {
            disagreements.push(format!("wide_unsat({p})/SC/opacity"));
        }
        if sat_ns < dfs_ns && crossover_at.is_none() {
            crossover_at = Some(p as u64);
        }
        if !json {
            println!(
                "    {:>3} {:>12.1} {:>12.1} {:>8}",
                p,
                dfs_ns as f64 / 1e3,
                sat_ns as f64 / 1e3,
                if sat_ns < dfs_ns { "sat" } else { "dfs" }
            );
        }
        let mut j = Json::obj();
        j.push("p", (p as u64).into())
            .push("dfs_ns", dfs_ns.into())
            .push("sat_ns", sat_ns.into());
        points.push(j);
    }
    rows.push(Row {
        section: "sat",
        id: "sat/crossover".into(),
        expected: "SAT beats DFS at some wide-UNSAT size",
        observed: match crossover_at {
            Some(p) => format!("SAT wins from p = {p}"),
            None => "DFS won at every size".into(),
        },
        pass: crossover_at.is_some(),
    });
    if !json {
        println!(
            "  {} checks, {} disagreements; solver: {} conflicts, {} learned, wall p99 {}ns",
            checked,
            disagreements.len(),
            total.conflicts,
            total.learned,
            total.wall.p99(),
        );
    }

    let mut sec = Json::obj();
    sec.push("checked", checked.into())
        .push("disagreements", (disagreements.len() as u64).into())
        .push("agreement", disagreements.is_empty().into())
        .push("positives", positives.into())
        .push("witness_certified", certified.into())
        .push("crossover", crossover_at.is_some().into())
        .push(
            "crossover_at",
            match crossover_at {
                Some(p) => p.into(),
                None => Json::Null,
            },
        )
        .push("crossover_points", Json::Arr(points))
        .push("stats", total.to_json());
    (sec, total)
}

/// `--cnf <dir>`: write the base serialization-order encoding of every
/// litmus outcome (per registry entry, per check kind) as a DIMACS
/// file whose comment header names the experiment, the model key and
/// the check kind — ready for external solvers or proof-logging tools.
fn cnf_export(dir: &std::path::Path, json: bool, rows: &mut Vec<Row>) -> Json {
    use jungle_core::encode::{opacity_cnf, sgla_cnf};
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("could not create CNF directory {}: {e}", dir.display());
        std::process::exit(1);
    }
    let sanitize = |s: &str| {
        s.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect::<String>()
    };
    let mut files = 0u64;
    let mut clauses = 0u64;
    for litmus in all_litmus() {
        for o in &litmus.outcomes {
            for e in registry() {
                for kind in ["opacity", "sgla"] {
                    let mut doc = if kind == "opacity" {
                        opacity_cnf(&o.history, e.model)
                    } else {
                        sgla_cnf(&o.history, e.model)
                    };
                    doc.comment(format!("experiment: {}/{}", litmus.name, o.label));
                    doc.comment(format!("model: {}", e.key));
                    doc.comment(format!("kind: {kind}"));
                    let path = dir.join(format!(
                        "{}-{}-{}-{kind}.cnf",
                        sanitize(litmus.name),
                        sanitize(&o.label),
                        sanitize(e.key),
                    ));
                    if let Err(err) = std::fs::write(&path, doc.to_dimacs()) {
                        eprintln!("could not write {}: {err}", path.display());
                        std::process::exit(1);
                    }
                    files += 1;
                    clauses += doc.clauses() as u64;
                }
            }
        }
    }
    if !json {
        println!(
            "\nCNF export: {files} DIMACS files ({clauses} clauses) -> {}",
            dir.display()
        );
    }
    rows.push(Row {
        section: "cnf",
        id: "cnf/export".into(),
        expected: "one DIMACS file per outcome × model × kind",
        observed: format!("{files} files, {clauses} clauses"),
        pass: files > 0,
    });
    let mut sec = Json::obj();
    sec.push("dir", dir.display().to_string().as_str().into())
        .push("files", files.into())
        .push("clauses", clauses.into());
    sec
}

fn main() {
    let args = parse_args();
    if let Some(path) = args.replay.clone() {
        replay_mode(&args, &path);
    }
    // Validate `--explain <id>` / `--record <dir> <id>` up front so a
    // typo fails before the multi-second report run, with the valid
    // ids listed.
    let explain_targets: Option<Vec<Experiment>> = args.explain.then(|| match &args.explain_id {
        Some(id) => vec![resolve_experiment(id)],
        None => thm1_suite(),
    });
    let record_targets: Option<Vec<Experiment>> =
        args.record.is_some().then(|| match &args.record_id {
            Some(id) => vec![resolve_experiment(id)],
            None => thm1_suite(),
        });
    let json = args.json;
    let t_start = std::time::Instant::now();

    let recorder = args.trace.as_ref().map(|_| {
        // A bigger ring than the default: the report's sweeps emit
        // millions of events and the exported window should still hold
        // a representative tail of every layer.
        let r = Arc::new(FlightRecorder::with_capacity(1 << 16));
        flight::install(r.clone());
        r
    });
    let profiler = args.profile.then(|| {
        let p = Arc::new(Profiler::new());
        profile::install(p.clone());
        p
    });

    let mut rows: Vec<Row> = Vec::new();
    let mut metrics = MetricsSnapshot::new();
    let mut schedules = 0u64;
    let mut dedup_hits = 0u64;
    let mut dpor_executed = 0u64;
    let mut dpor_classes = 0u64;
    let mut frontier_steals = 0u64;
    // Run-wide DPOR waste attribution, absorbed from every DPOR-backed
    // verification, alongside an independently summed blocked-run total
    // from the explorers' plain counters. The two must reconcile
    // exactly: `waste_total.blocked == dpor_blocked_total`.
    let mut waste_total = DporStats::default();
    let mut dpor_blocked_total = 0u64;

    // ── Figures 1–2: litmus verdict tables ────────────────────────
    let phase_figures = profile::enter("report.figures");
    if !json {
        println!("════ Figures 1–2: litmus verdicts per memory model ════\n");
    }
    for litmus in all_litmus() {
        if !json {
            println!("{} — {}", litmus.name, litmus.question);
            print!("  {:<14}", "outcome");
            for m in all_models() {
                print!("{:>9}", m.name());
            }
            println!();
        }
        for o in &litmus.outcomes {
            if !json {
                print!("  {:<14}", o.label);
            }
            for m in all_models() {
                let (verdict, stats) = check_opacity_traced(&o.history, m);
                metrics.record_checker(litmus.name, &stats);
                let ok = verdict.is_opaque();
                if !json {
                    print!("{:>9}", if ok { "allowed" } else { "✗" });
                }
                rows.push(Row {
                    section: "figures",
                    id: format!("{}/{}/{}", litmus.name, o.label, m.name()),
                    expected: "(see paper)",
                    observed: if ok {
                        "allowed".into()
                    } else {
                        "forbidden".into()
                    },
                    pass: true,
                });
            }
            if !json {
                println!();
            }
        }
        if !json {
            println!();
        }
    }
    drop(phase_figures);

    // ── Instrumentation taxonomy + measured instruction costs ─────
    if !json {
        println!("════ TM algorithms: instrumentation & measured instruction cost ════\n");
        println!(
            "  {:<18} {:<34} {:>8} {:>8} {:>8} {:>8}",
            "algorithm", "class (§4)", "nt-rd", "nt-wr", "tx-rd", "commit"
        );
        let strong = StrongTm::new();
        let strong_opt = StrongTm::optimized();
        let algos: [(&dyn McAlgo, &str); 6] = [
            (&GlobalLockTm, "Fig. 6 / Thm 3, 7"),
            (&WriteTxnTm, "Thm 4"),
            (&VersionedTm, "Thm 5"),
            (&strong, "§6.1"),
            (&strong_opt, "§6.1 optimized"),
            (&LazyTl2Tm, "weak baseline"),
        ];
        for (algo, _ref) in algos {
            let c = measure(algo);
            println!(
                "  {:<18} {:<34} {:>8} {:>8} {:>8} {:>8}",
                algo.name(),
                algo.instrumentation().to_string(),
                c.nt_read.max_instrs,
                c.nt_write.max_instrs,
                c.txn_read.max_instrs,
                c.commit.max_instrs,
            );
        }
        println!("  (max memory instructions per operation, uncontended standard program)");
        println!();
    }

    // ── Lemma 1 / Theorems 1–5, 7 on the simulator ────────────────
    // One verdict memo shared across every sweep in the report,
    // preloaded from the previous run's persisted verdicts: the
    // constructions reuse the same litmus programs under the same
    // models, so repeated per-history verdicts come from the memo —
    // within the run and across runs.
    let memo = SharedVerdictMemo::new();
    match memo.load_dir(&args.memo_dir) {
        Ok(n) if n > 0 && !json => {
            println!(
                "(preloaded {n} memoized verdicts from {})\n",
                args.memo_dir.display()
            );
        }
        Ok(_) => {}
        Err(e) => eprintln!(
            "warning: could not preload memo from {}: {e}",
            args.memo_dir.display()
        ),
    }
    let cfg = ParallelConfig::default();
    let phase_theorems = profile::enter("report.theorems");
    if !json {
        println!("════ Lemma 1 & Theorems (simulator experiments) ════\n");
    }
    for e in all_fixed_experiments() {
        let t0 = std::time::Instant::now();
        let r = e.run_shared(SweepSeeds::new(0, 2_000), 8_000, &cfg, &memo);
        let dt = t0.elapsed();
        metrics.record_stm(e.algo.name(), &r.tm);
        metrics.record_mc(&r.stats);
        schedules += r.stats.schedules;
        dedup_hits += r.stats.dedup_hits;
        dpor_executed += r.stats.dpor_executed;
        dpor_classes += r.stats.dpor_classes;
        frontier_steals += r.stats.frontier_steals;
        waste_total.absorb(&r.waste);
        dpor_blocked_total += r.stats.dpor_blocked;
        if !json {
            println!(
                "  {:<22} {:<36} {:>6} ({:.0?})",
                e.id,
                e.paper_ref,
                if r.passed { "PASS" } else { "FAIL" },
                dt
            );
        }
        rows.push(Row {
            section: "theorems",
            id: e.id.clone(),
            expected: e.paper_ref,
            observed: r.detail,
            pass: r.passed,
        });
    }
    drop(phase_theorems);

    // ── DPOR reduction: executed runs vs history classes ──────────
    // For every exhaustive experiment: (a) the brute-force oracle —
    // the DPOR explorer must visit exactly the class-key set plain
    // enumeration visits, in far fewer runs; (b) worker-count
    // determinism — verdict and witness fingerprint at 1, 2 and 4
    // workers must be identical.
    let mut dpor_entries: Vec<Json> = Vec::new();
    {
        let _phase = profile::enter("report.dpor");
        if !json {
            println!("\n════ DPOR reduction: executed runs vs history classes ════\n");
            println!(
                "  {:<22} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>8}",
                "experiment",
                "brute",
                "executed",
                "complete",
                "classes",
                "ratio",
                "oracle",
                "workers"
            );
        }
        for e in all_fixed_experiments().into_iter().filter(|e| e.exhaustive) {
            let brute = class_sweep_enumerative(&e.program, e.algo, &e.entry, 8_000);
            let dpor = class_sweep_dpor(&e.program, e.algo, &e.entry, 8_000);
            waste_total.absorb(&dpor.waste);
            dpor_blocked_total += dpor.blocked;
            let oracle_ok = dpor.keys == brute.keys && dpor.truncated == brute.truncated;
            // Verdict + witness at each worker count (serial path at 1).
            let mut sweep_verdicts: Vec<(bool, Option<u64>)> = Vec::new();
            let mut steals_any_width = 0u64;
            for threads in [1usize, 2, 4] {
                let v = check_all_traces_shared(
                    &e.program,
                    e.algo,
                    &e.entry,
                    e.kind,
                    8_000,
                    &ParallelConfig::with_threads(threads),
                    &memo,
                );
                steals_any_width = steals_any_width.max(v.stats.frontier_steals);
                waste_total.absorb(&v.waste);
                dpor_blocked_total += v.stats.dpor_blocked;
                sweep_verdicts.push((v.ok, v.violation.as_ref().map(|t| t.cache_key())));
            }
            let deterministic = sweep_verdicts.windows(2).all(|w| w[0] == w[1]);
            frontier_steals += steals_any_width;
            // Optimality metric: complete runs per distinct class. 1.00
            // means each class was materialized by exactly one full run;
            // executed additionally counts blocked sleep-set probes that
            // abort partway through the prefix.
            let ratio = dpor.completed as f64 / (dpor.keys.len().max(1) as f64);
            let pass = oracle_ok && deterministic;
            if !json {
                println!(
                    "  {:<22} {:>9} {:>9} {:>9} {:>9} {:>7.2} {:>7} {:>8}",
                    e.id,
                    brute.executed,
                    dpor.executed,
                    dpor.completed,
                    dpor.keys.len(),
                    ratio,
                    if oracle_ok { "match" } else { "MISMATCH" },
                    if deterministic { "stable" } else { "DIVERGE" },
                );
            }
            let mut j = Json::obj();
            j.push("id", e.id.as_str().into())
                .push("brute_executed", brute.executed.into())
                .push("dpor_executed", dpor.executed.into())
                .push("dpor_completed", dpor.completed.into())
                .push("classes", (dpor.keys.len() as u64).into())
                .push("truncated", dpor.truncated.into())
                .push("completed_per_class", Json::F64(ratio))
                .push("blocked", dpor.blocked.into())
                .push("oracle_match", oracle_ok.into())
                .push("workers_deterministic", deterministic.into())
                .push("frontier_steals", steals_any_width.into());
            dpor_entries.push(j);
            rows.push(Row {
                section: "dpor",
                id: format!("dpor/{}", e.id),
                expected: "classes == brute; verdict stable at 1/2/4 workers",
                observed: format!(
                    "{} runs ({} complete) → {} classes ({}× fewer than {} brute), oracle {}, workers {}",
                    dpor.executed,
                    dpor.completed,
                    dpor.keys.len(),
                    brute.executed / dpor.executed.max(1),
                    brute.executed,
                    if oracle_ok { "match" } else { "mismatch" },
                    if deterministic { "stable" } else { "diverge" },
                ),
                pass,
            });
        }
        if !json {
            println!("  (brute = pre-reduction enumeration, the correctness oracle)");
        }
    }

    // ── Matched-model zoo: five STMs × every registry entry ───────
    // Descriptive cross-validation: each cell samples the STM on the
    // entry's execution semantics and checks opacity parametrized by
    // the same entry's model. (The fixed experiments above keep the
    // paper's SC-execution setting; this table is what the unified
    // registry adds.)
    if !json {
        println!("\n════ Matched-model zoo: STM × registry entry (execute X, check X) ════\n");
        print!("  {:<18}", "algorithm");
        for e in registry() {
            print!("{:>9}", e.key);
        }
        println!();
    }
    let phase_zoo = profile::enter("report.zoo");
    let zoo = matched_zoo(SweepSeeds::new(0, 30), 8_000, &cfg, &memo);
    let mut zoo_models: BTreeSet<&'static str> = BTreeSet::new();
    let mut zoo_algos: BTreeSet<&'static str> = BTreeSet::new();
    {
        let mut last_algo = "";
        for z in &zoo {
            metrics.record_mc(&z.stats);
            schedules += z.stats.schedules;
            dedup_hits += z.stats.dedup_hits;
            zoo_models.insert(z.model);
            zoo_algos.insert(z.algo);
            if !json {
                if z.algo != last_algo {
                    if !last_algo.is_empty() {
                        println!();
                    }
                    print!("  {:<18}", z.algo);
                    last_algo = z.algo;
                }
                print!("{:>9}", if z.ok { "opaque" } else { "✗" });
            }
            rows.push(Row {
                section: "zoo",
                id: format!("zoo/{}/{}", z.algo, z.model),
                expected: "(descriptive)",
                observed: if z.ok {
                    "opaque".into()
                } else {
                    "violated".into()
                },
                pass: true,
            });
        }
        if !json {
            println!("\n  (30 sampled schedules per cell; matched execution and checker model)");
        }
    }
    drop(phase_zoo);

    // ── Counterexample explanations (--explain) ───────────────────
    let mut explanations: Vec<Json> = Vec::new();
    if let Some(targets) = &explain_targets {
        if !json {
            println!("\n════ Theorem 1 counterexamples, explained ════\n");
        }
        for e in targets {
            match explain_experiment(e, SweepSeeds::new(0, 2_000), 8_000) {
                Some(ex) => {
                    if !json {
                        println!("── {} ({}) ──", e.id, e.paper_ref);
                        println!("{}", ex.render());
                    }
                    let mut j = Json::obj();
                    j.push("id", e.id.as_str().into())
                        .push("model", ex.model.into())
                        .push(
                            "class",
                            match ex.class {
                                Some(c) => c.name().into(),
                                None => Json::Null,
                            },
                        )
                        .push("rendered", ex.render().as_str().into());
                    explanations.push(j);
                }
                None => {
                    if !json {
                        println!("── {} — no violation found (unexpected)", e.id);
                    }
                    rows.push(Row {
                        section: "explain",
                        id: e.id.clone(),
                        expected: "violating trace",
                        observed: "none found".into(),
                        pass: false,
                    });
                }
            }
        }
    }

    // ── Schedule capture → shrink → replay (--record) ─────────────
    let mut replay_section: Option<Json> = None;
    let mut replay_logs = 0u64;
    let mut shrink_rounds_total = 0u64;
    if let Some(dir) = &args.record {
        if !json {
            println!("\n════ Recorded schedules: capture → shrink → replay ════\n");
        }
        let mut log_entries: Vec<Json> = Vec::new();
        for e in record_targets.unwrap_or_default() {
            let Some(rec) = record_experiment(&e, SweepSeeds::new(0, 2_000), 8_000) else {
                rows.push(Row {
                    section: "replay",
                    id: e.id.clone(),
                    expected: "violating schedule recorded",
                    observed: "no violation within sweep".into(),
                    pass: false,
                });
                continue;
            };
            let (min, stats) = shrink(&rec.log, &e);
            let raw_out = replay(&rec.log, &e);
            let min_out = replay(&min, &e);
            let class_matches = rec.log.class.is_some() && rec.log.class == min.class;
            let stem = e.id.replace('/', "-");
            let raw_path = dir.join(format!("{stem}.json"));
            let min_path = dir.join(format!("{stem}.min.json"));
            for (path, log) in [(&raw_path, &rec.log), (&min_path, &min)] {
                if let Err(err) = log.save(path) {
                    eprintln!("could not write schedule log {}: {err}", path.display());
                    std::process::exit(1);
                }
            }
            replay_logs += 1;
            shrink_rounds_total += stats.rounds;
            let pass = raw_out.matches
                && raw_out.violating
                && min_out.matches
                && min_out.violating
                && class_matches;
            if !json {
                println!(
                    "  {:<22} {:>5} decisions → {:>4} ({} rounds, {} candidates), class {} → {}: {}",
                    e.id,
                    stats.initial_decisions,
                    stats.final_decisions,
                    stats.rounds,
                    stats.candidates,
                    rec.log.class.as_deref().unwrap_or("?"),
                    min.class.as_deref().unwrap_or("?"),
                    if pass { "replay OK" } else { "FAIL" },
                );
            }
            let mut j = Json::obj();
            j.push("id", e.id.as_str().into())
                .push("model", min.model.as_str().into())
                .push(
                    "seed",
                    match rec.log.seed {
                        Some(s) => s.into(),
                        None => Json::Null,
                    },
                )
                .push("decisions", rec.log.decisions.len().into())
                .push("shrunk_decisions", min.decisions.len().into())
                .push("fingerprint", rec.log.fingerprint.into())
                .push("shrunk_fingerprint", min.fingerprint.into())
                .push("replay_matches", raw_out.matches.into())
                .push("shrunk_replay_matches", min_out.matches.into())
                .push("shrunk_violating", min_out.violating.into())
                .push("shrink_rounds", stats.rounds.into())
                .push("shrink_candidates", stats.candidates.into())
                .push(
                    "class",
                    match &rec.log.class {
                        Some(c) => c.as_str().into(),
                        None => Json::Null,
                    },
                )
                .push("class_matches", class_matches.into())
                .push("file", raw_path.display().to_string().as_str().into())
                .push("min_file", min_path.display().to_string().as_str().into());
            log_entries.push(j);
            rows.push(Row {
                section: "replay",
                id: e.id.clone(),
                expected: "replay reproduces; shrunk log keeps class",
                observed: format!(
                    "{} → {} decisions, class {}",
                    stats.initial_decisions,
                    stats.final_decisions,
                    min.class.as_deref().unwrap_or("?")
                ),
                pass,
            });
        }
        let mut sec = Json::obj();
        sec.push("dir", dir.display().to_string().as_str().into())
            .push("recorded", replay_logs.into())
            .push("shrink_rounds", shrink_rounds_total.into())
            .push("logs", Json::Arr(log_entries));
        replay_section = Some(sec);
    }

    // ── Streaming monitor over live STM traffic (--monitor) ───────
    let mut monitor_entries: Vec<Json> = Vec::new();
    let mut monitor_total: Option<MonitorStats> = None;
    if args.monitor {
        let _phase = profile::enter("report.monitor");
        let (entries, total) = monitor_sweep(json, &mut rows);
        metrics.record_monitor(&total);
        monitor_entries = entries;
        monitor_total = Some(total);
    }

    // ── SAT backend cross-validation + crossover (--sat) ──────────
    let mut sat_section: Option<Json> = None;
    let mut sat_total: Option<SatStats> = None;
    if args.sat {
        let _phase = profile::enter("report.sat");
        let (sec, total) = sat_sweep(json, &mut rows);
        metrics.record_sat(&total);
        sat_section = Some(sec);
        sat_total = Some(total);
    }

    // ── DIMACS export of the corpus encodings (--cnf) ─────────────
    let cnf_section: Option<Json> = args
        .cnf
        .as_ref()
        .map(|dir| cnf_export(dir, json, &mut rows));

    // ── STM smoke under the flight recorder ───────────────────────
    if recorder.is_some() {
        // The checker events from the opening figures loop wrapped out
        // of the ring during the sweeps above; re-check one figure per
        // model so the exported window carries the `checker` layer too.
        if let Some(l) = all_litmus().first() {
            for o in &l.outcomes {
                for m in all_models() {
                    let _ = check_opacity_traced(&o.history, m);
                }
            }
        }
        // Same for the `dpor` layer: one small reduction sweep so its
        // events sit inside the exported tail. Its waste feeds the
        // run-wide attribution like every other DPOR sweep.
        if let Some(e) = all_fixed_experiments().into_iter().find(|e| e.exhaustive) {
            let sweep = class_sweep_dpor(&e.program, e.algo, &e.entry, 8_000);
            waste_total.absorb(&sweep.waste);
            dpor_blocked_total += sweep.blocked;
        }
        // And the `sat` layer: one SAT-backed check per model so the
        // exported tail carries solver begin/conflict/end events.
        if let Some(l) = all_litmus().first() {
            for o in &l.outcomes {
                for m in all_models() {
                    let _ = jungle_core::encode::check_opacity_sat_traced(&o.history, m);
                }
            }
        }
        stm_smoke();
    }

    // ── Persist the memo for the next run ─────────────────────────
    if let Err(e) = memo.save_dir(&args.memo_dir) {
        eprintln!(
            "warning: could not persist memo to {}: {e}",
            args.memo_dir.display()
        );
    }

    // ── Ledger: append this run; --compare gates on the previous ──
    let prev = ledger::last_from(&args.ledger, "report");
    let entry = LedgerEntry {
        ts_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        git_rev: git_rev(),
        source: "report".into(),
        wall_ms: t_start.elapsed().as_millis() as u64,
        schedules,
        dedup_hits,
        memo_hits: memo.hits(),
        memo_lookups: memo.lookups(),
        zoo_models: zoo_models.len() as u64,
        zoo_algos: zoo_algos.len() as u64,
        replay_logs,
        shrink_rounds: shrink_rounds_total,
        monitor_ops: monitor_total.as_ref().map_or(0, |s| s.ops_ingested),
        monitor_windows: monitor_total.as_ref().map_or(0, |s| s.windows_sealed),
        monitor_escalated: monitor_total.as_ref().map_or(0, |s| s.escalated),
        dpor_executed,
        dpor_classes,
        frontier_steals,
        p99_window_ns: monitor_total.as_ref().map_or(0, |s| s.p99_window_ns()),
        sat_solved: sat_total.as_ref().map_or(0, |s| s.solved),
        sat_conflicts: sat_total.as_ref().map_or(0, |s| s.conflicts),
        sat_wall_ns_p99: sat_total.as_ref().map_or(0, |s| s.wall.p99()),
        blocked_depth_mode: waste_total.blocked_depth_mode(),
        worker_busy_frac: waste_total.busy_frac(),
        metrics: metrics.to_json(),
    };
    if let Err(e) = ledger::append(&args.ledger, &entry) {
        eprintln!(
            "warning: could not append to ledger {}: {e}",
            args.ledger.display()
        );
    }
    if let Err(e) = ledger::compact(&args.ledger, ledger::COMPACT_KEEP_DEFAULT) {
        eprintln!(
            "warning: could not compact ledger {}: {e}",
            args.ledger.display()
        );
    }
    let mut regressions: Vec<String> = Vec::new();
    if args.compare {
        match &prev {
            Some(prev) => {
                regressions = ledger::compare(prev, &entry, &Tolerances::default());
                if !json {
                    if regressions.is_empty() {
                        println!(
                            "\nledger compare vs {} ({}): no regressions",
                            prev.git_rev, prev.source
                        );
                    } else {
                        println!("\nledger compare vs {} ({}):", prev.git_rev, prev.source);
                        for r in &regressions {
                            println!("  REGRESSION: {r}");
                        }
                    }
                }
            }
            None => {
                if !json {
                    println!(
                        "\nledger compare: no previous entry in {} (first run passes vacuously)",
                        args.ledger.display()
                    );
                }
            }
        }
    }

    // ── Flight-recorder export ────────────────────────────────────
    if let (Some(rec), Some(path)) = (&recorder, &args.trace) {
        flight::uninstall();
        let trace_json = rec.chrome_trace();
        match std::fs::write(path, format!("{trace_json}\n")) {
            Ok(()) => {
                if !json {
                    println!(
                        "\nflight recording: {} events ({} dropped) -> {}",
                        rec.recorded(),
                        rec.dropped(),
                        path.display()
                    );
                }
            }
            Err(e) => {
                eprintln!("could not write trace to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    // ── Phase-profile snapshot (--profile) ────────────────────────
    let profile_section = profiler.as_ref().map(|p| {
        // Every worker and monitor thread has exited (scoped spawns and
        // explicit joins above), flushing its thread-local aggregation;
        // only the main thread's remains.
        profile::flush_thread();
        profile::uninstall();
        let phases = p.snapshot();
        let mut sec = Json::obj();
        sec.push("phases", phases.to_json())
            .push("dpor", waste_total.to_json())
            .push("dpor_blocked", dpor_blocked_total.into());
        if let Some(total) = &monitor_total {
            sec.push("monitor_window_ns", total.window_hist().to_json());
        }
        if !json {
            println!("\n════ Exploration profile ════\n");
            print!("{}", phases.render());
            println!(
                "\n  dpor waste: {} blocked probes (mode depth {}), {} race pairs, worker busy {:.1}%",
                waste_total.blocked,
                waste_total.blocked_depth_mode(),
                waste_total.race_total(),
                100.0 * waste_total.busy_frac(),
            );
            println!(
                "  blocked-attribution reconciliation: {} attributed vs {} counted ({})",
                waste_total.blocked,
                dpor_blocked_total,
                if waste_total.blocked == dpor_blocked_total {
                    "exact"
                } else {
                    "MISMATCH"
                },
            );
            if let Some(total) = &monitor_total {
                let h = total.window_hist();
                println!(
                    "  monitor window latency: p50 {}ns  p99 {}ns  max {}ns over {} windows",
                    h.p50(),
                    h.p99(),
                    h.max,
                    h.count,
                );
            }
        }
        sec
    });
    if profile_section.is_some() && waste_total.blocked != dpor_blocked_total {
        eprintln!(
            "error: DPOR blocked attribution diverged: {} attributed vs {} counted",
            waste_total.blocked, dpor_blocked_total
        );
        std::process::exit(1);
    }

    let failed: Vec<&Row> = rows.iter().filter(|r| !r.pass).collect();
    if json {
        let mut out = Json::obj();
        let mut memo_j = Json::obj();
        memo_j
            .push("hits", memo.hits().into())
            .push("lookups", memo.lookups().into())
            .push("entries", (memo.len() as u64).into())
            .push("cross_run_hits", memo.cross_run_hits().into())
            .push("in_run_hits", (memo.hits() - memo.cross_run_hits()).into())
            .push("preloaded_entries", memo.preloaded_entries().into());
        out.push(
            "rows",
            Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
        )
        .push("metrics", metrics.to_json())
        .push("shared_memo", memo_j)
        .push("dpor", Json::Arr(dpor_entries))
        .push("ledger_entry", entry.to_json());
        if args.explain {
            out.push("explanations", Json::Arr(explanations));
        }
        if let Some(sec) = replay_section {
            out.push("replay", sec);
        }
        if let Some(total) = &monitor_total {
            let mut sec = Json::obj();
            sec.push("stms", Json::Arr(monitor_entries))
                .push("total", total.to_json());
            out.push("monitor", sec);
        }
        if let Some(sec) = sat_section {
            out.push("sat", sec);
        }
        if let Some(sec) = cnf_section {
            out.push("cnf", sec);
        }
        if let Some(sec) = profile_section {
            out.push("profile", sec);
        }
        if let Some(rec) = &recorder {
            let mut fj = Json::obj();
            fj.push("recorded", rec.recorded().into())
                .push("dropped", rec.dropped().into());
            let mut cats = Json::obj();
            for (name, recorded, dropped) in rec.by_category() {
                let mut c = Json::obj();
                c.push("recorded", recorded.into())
                    .push("dropped", dropped.into());
                cats.push(name, c);
            }
            fj.push("categories", cats);
            out.push("flight", fj);
        }
        if args.compare {
            out.push(
                "regressions",
                Json::Arr(regressions.iter().map(|r| Json::from(r.as_str())).collect()),
            );
        }
        println!("{out}");
        if !failed.is_empty() {
            eprintln!("{} report checks failed", failed.len());
            std::process::exit(1);
        }
    } else {
        println!();
        if failed.is_empty() {
            println!("All {} checks passed.", rows.len());
        } else {
            println!("{} FAILURES:", failed.len());
            for f in failed {
                println!("  {}: {}", f.id, f.observed);
            }
            std::process::exit(1);
        }
    }
    if !regressions.is_empty() {
        eprintln!("{} ledger regressions", regressions.len());
        std::process::exit(3);
    }
}
