//! The reproduction report: regenerates every figure verdict and
//! theorem experiment of the paper in one run and prints the tables
//! that EXPERIMENTS.md records. Optionally dumps JSON with `--json`.
//!
//! Run with: `cargo run --release -p jungle-bench --bin report`

use jungle_core::model::all_models;
use jungle_litmus::figures::all_litmus;
use jungle_mc::algos::{
    GlobalLockTm, LazyTl2Tm, StrongTm, TmAlgo as McAlgo, VersionedTm, WriteTxnTm,
};
use jungle_mc::cost::measure;
use jungle_mc::theorems::all_fixed_experiments;

struct Row {
    section: &'static str,
    id: String,
    expected: &'static str,
    observed: String,
    pass: bool,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut rows: Vec<Row> = Vec::new();

    // ── Figures 1–2: litmus verdict tables ────────────────────────
    if !json {
        println!("════ Figures 1–2: litmus verdicts per memory model ════\n");
    }
    for litmus in all_litmus() {
        if !json {
            println!("{} — {}", litmus.name, litmus.question);
            print!("  {:<14}", "outcome");
            for m in all_models() {
                print!("{:>9}", m.name());
            }
            println!();
        }
        for o in &litmus.outcomes {
            if !json {
                print!("  {:<14}", o.label);
            }
            for m in all_models() {
                let ok = litmus.judge(&o.label, m).unwrap();
                if !json {
                    print!("{:>9}", if ok { "allowed" } else { "✗" });
                }
                rows.push(Row {
                    section: "figures",
                    id: format!("{}/{}/{}", litmus.name, o.label, m.name()),
                    expected: "(see paper)",
                    observed: if ok { "allowed".into() } else { "forbidden".into() },
                    pass: true,
                });
            }
            if !json {
                println!();
            }
        }
        if !json {
            println!();
        }
    }

    // ── Instrumentation taxonomy + measured instruction costs ─────
    if !json {
        println!("════ TM algorithms: instrumentation & measured instruction cost ════\n");
        println!(
            "  {:<18} {:<34} {:>8} {:>8} {:>8} {:>8}",
            "algorithm", "class (§4)", "nt-rd", "nt-wr", "tx-rd", "commit"
        );
        let strong = StrongTm::new();
        let strong_opt = StrongTm::optimized();
        let algos: [(&dyn McAlgo, &str); 6] = [
            (&GlobalLockTm, "Fig. 6 / Thm 3, 7"),
            (&WriteTxnTm, "Thm 4"),
            (&VersionedTm, "Thm 5"),
            (&strong, "§6.1"),
            (&strong_opt, "§6.1 optimized"),
            (&LazyTl2Tm, "weak baseline"),
        ];
        for (algo, _ref) in algos {
            let c = measure(algo);
            println!(
                "  {:<18} {:<34} {:>8} {:>8} {:>8} {:>8}",
                algo.name(),
                algo.instrumentation().to_string(),
                c.nt_read.max_instrs,
                c.nt_write.max_instrs,
                c.txn_read.max_instrs,
                c.commit.max_instrs,
            );
        }
        println!("  (max memory instructions per operation, uncontended standard program)");
        println!();
    }

    // ── Lemma 1 / Theorems 1–5, 7 on the simulator ────────────────
    if !json {
        println!("════ Lemma 1 & Theorems (simulator experiments) ════\n");
    }
    for e in all_fixed_experiments() {
        let t0 = std::time::Instant::now();
        let r = e.run(2_000, 8_000);
        let dt = t0.elapsed();
        if !json {
            println!(
                "  {:<22} {:<36} {:>6} ({:.0?})",
                e.id,
                e.paper_ref,
                if r.passed { "PASS" } else { "FAIL" },
                dt
            );
        }
        rows.push(Row {
            section: "theorems",
            id: e.id.clone(),
            expected: e.paper_ref,
            observed: r.detail,
            pass: r.passed,
        });
    }

    let failed: Vec<&Row> = rows.iter().filter(|r| !r.pass).collect();
    if json {
        // Minimal hand-rolled JSON (fields are plain ASCII).
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        println!("[");
        for (i, r) in rows.iter().enumerate() {
            println!(
                "  {{\"section\":\"{}\",\"id\":\"{}\",\"expected\":\"{}\",\"observed\":\"{}\",\"pass\":{}}}{}",
                r.section,
                esc(&r.id),
                esc(r.expected),
                esc(&r.observed),
                r.pass,
                if i + 1 == rows.len() { "" } else { "," }
            );
        }
        println!("]");
    } else {
        println!();
        if failed.is_empty() {
            println!("All {} checks passed.", rows.len());
        } else {
            println!("{} FAILURES:", failed.len());
            for f in failed {
                println!("  {}: {}", f.id, f.observed);
            }
            std::process::exit(1);
        }
    }
}
