//! Experiment E5 (parallel half): the serial checker against the
//! parallel entry points at 1/2/4/8 worker threads, over histories
//! whose serialization-order enumeration is wide enough to split.
//!
//! The stress histories come from `jungle_litmus::stress`:
//! `wide_unsat_history(p)` forces the checker to exhaust all `p!`
//! transaction orders (the most parallelizable shape), while
//! `wide_history(p, 0)` buries the witness behind the orders the
//! enumeration visits first. An untimed traced pass at the end attaches
//! the search counters (workers, stolen prefixes, memo hits) to the
//! JSON report so `report --json` and CI can track them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jungle_core::model::Sc;
use jungle_core::opacity::{check_opacity, check_opacity_par, check_opacity_par_traced};
use jungle_core::par::ParallelConfig;
use jungle_core::sgla::{check_sgla, check_sgla_par};
use jungle_litmus::stress::{wide_history, wide_unsat_history};
use jungle_obs::ledger::{self, LedgerEntry};
use jungle_obs::{MetricsSnapshot, ToJson};
use std::hint::black_box;
use std::time::Duration;

/// Worker counts swept by every group. `0` is not included: the point
/// is comparing fixed counts against the serial baseline, not the OS
/// auto-detection.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A config pinned to `threads` workers with the size threshold
/// disabled, so even the smaller stress histories take the parallel
/// path and the comparison is clean.
fn pinned(threads: usize) -> ParallelConfig {
    ParallelConfig {
        threads,
        min_units: 0,
    }
}

fn bench_opacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("E5_par_opacity");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    for p in [4usize, 5, 6] {
        let h = wide_unsat_history(p);
        g.bench_with_input(BenchmarkId::new("serial", p), &h, |b, h| {
            b.iter(|| black_box(check_opacity(h, &Sc).is_opaque()))
        });
        for t in THREADS {
            let cfg = pinned(t);
            g.bench_with_input(BenchmarkId::new(format!("par_t{t}"), p), &h, |b, h| {
                b.iter(|| black_box(check_opacity_par(h, &Sc, &cfg).is_opaque()))
            });
        }
    }
    g.finish();
}

fn bench_opacity_witness(c: &mut Criterion) {
    // The satisfiable variant: the witness needs transaction 0 last, so
    // the serial scan burns through (p-1)! failing orders first while
    // the pool reaches the successful prefix sooner (the deterministic
    // lowest-index rule still returns the identical witness).
    let mut g = c.benchmark_group("E5_par_opacity_witness");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    let p = 6usize;
    let h = wide_history(p, 0);
    g.bench_with_input(BenchmarkId::new("serial", p), &h, |b, h| {
        b.iter(|| black_box(check_opacity(h, &Sc).is_opaque()))
    });
    for t in THREADS {
        let cfg = pinned(t);
        g.bench_with_input(BenchmarkId::new(format!("par_t{t}"), p), &h, |b, h| {
            b.iter(|| black_box(check_opacity_par(h, &Sc, &cfg).is_opaque()))
        });
    }
    g.finish();
}

fn bench_sgla(c: &mut Criterion) {
    let mut g = c.benchmark_group("E5_par_sgla");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    let p = 5usize;
    let h = wide_unsat_history(p);
    g.bench_with_input(BenchmarkId::new("serial", p), &h, |b, h| {
        b.iter(|| black_box(check_sgla(h, &Sc).is_sgla()))
    });
    for t in THREADS {
        let cfg = pinned(t);
        g.bench_with_input(BenchmarkId::new(format!("par_t{t}"), p), &h, |b, h| {
            b.iter(|| black_box(check_sgla_par(h, &Sc, &cfg).is_sgla()))
        });
    }
    g.finish();
}

fn report_counters(_c: &mut Criterion) {
    // Untimed traced pass: cross-check verdicts and surface the
    // parallel counters in the JSON report.
    let t_start = std::time::Instant::now();
    let mut snap = MetricsSnapshot::new();
    for p in [4usize, 6] {
        let h = wide_unsat_history(p);
        let serial = check_opacity(&h, &Sc);
        for t in THREADS {
            let (v, stats) = check_opacity_par_traced(&h, &Sc, &pinned(t));
            assert_eq!(
                v.is_opaque(),
                serial.is_opaque(),
                "parallel verdict diverged at p={p}, threads={t}"
            );
            snap.record_checker(&format!("E5_wide_unsat_p{p}_t{t}"), &stats);
        }
    }
    criterion::report_metrics("E5_par_checker", snap.to_json().to_string());

    // Append the traced pass to the run ledger so bench invocations
    // leave the same audit trail as `report` (the headline sweep
    // counters stay zero: this source only carries checker metrics —
    // `report --compare` filters on source and skips these entries).
    let entry = LedgerEntry {
        ts_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        git_rev: git_rev(),
        source: "bench/par_checker".into(),
        wall_ms: t_start.elapsed().as_millis() as u64,
        schedules: 0,
        dedup_hits: 0,
        memo_hits: 0,
        memo_lookups: 0,
        zoo_models: 0,
        zoo_algos: 0,
        replay_logs: 0,
        shrink_rounds: 0,
        monitor_ops: 0,
        monitor_windows: 0,
        monitor_escalated: 0,
        dpor_executed: 0,
        dpor_classes: 0,
        frontier_steals: 0,
        p99_window_ns: 0,
        blocked_depth_mode: 0,
        worker_busy_frac: 0.0,
        sat_solved: 0,
        sat_conflicts: 0,
        sat_wall_ns_p99: 0,
        metrics: snap.to_json(),
    };
    // Bench binaries run with the package as CWD; anchor the default
    // ledger at the workspace root so bench and report share one file.
    let path = std::env::var("JUNGLE_LEDGER")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(".jungle/ledger.jsonl")
        });
    if let Err(e) = ledger::append(&path, &entry) {
        eprintln!(
            "warning: could not append to ledger {}: {e}",
            path.display()
        );
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

criterion_group!(
    benches,
    bench_opacity,
    bench_opacity_witness,
    bench_sgla,
    report_counters
);
criterion_main!(benches);
