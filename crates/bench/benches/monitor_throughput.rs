//! Experiment M1: streaming-monitor throughput.
//!
//! Three questions, three groups:
//!
//! * `M1_ring` — raw tap cost: how much does publishing an event into
//!   the bounded ring add to an STM operation?
//! * `M1_ingest` — monitor cost per event as a function of window
//!   size: the triage tier runs once per window, so larger windows
//!   amortize its (polynomial) cost over more events.
//! * `M1_escalate` — the tier gap: a window the triage tier clears vs.
//!   the same-size window that escalates to the batch checker.
//!
//! An untimed counted pass at the end drives real threaded STM traffic
//! through the tap, asserts the stream is clean (no drops, no
//! violations), and attaches the monitor counters to the JSON report
//! and the run ledger (source `bench/monitor_throughput`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jungle_core::ids::ProcId;
use jungle_monitor::{Monitor, MonitorConfig};
use jungle_obs::ledger::{self, LedgerEntry};
use jungle_obs::{Backpressure, EventRing, MetricsSnapshot, MonitorStats, ToJson};
use jungle_stm::{atomically, Ctx, GlobalLockStm, StmTap, TapEvent, TapOp};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// A deterministic committed-transaction stream: `txns` read-modify-
/// write transactions round-robined over `pids` processes on disjoint
/// variables — the monitor's best case (every window triage-clears).
fn synthetic_stream(pids: u32, txns: u64) -> Vec<TapEvent> {
    let mut out = Vec::with_capacity(txns as usize * 4);
    let mut counters = vec![0u64; pids as usize];
    for i in 0..txns {
        let p = (i % u64::from(pids)) as u32;
        let var = u64::from(p);
        let old = counters[p as usize];
        counters[p as usize] = old + 1;
        let pid = ProcId(p);
        out.push(TapEvent {
            pid,
            op: TapOp::Begin,
        });
        out.push(TapEvent {
            pid,
            op: TapOp::Read { var, val: old },
        });
        out.push(TapEvent {
            pid,
            op: TapOp::Write { var, val: old + 1 },
        });
        out.push(TapEvent {
            pid,
            op: TapOp::Commit { ticket: i },
        });
    }
    out
}

/// Like [`synthetic_stream`] but with a trailing transaction that reads
/// a value nobody wrote: the final window can never triage-clear, so
/// it escalates to the full checker (and is a real violation).
fn poisoned_stream(pids: u32, txns: u64) -> Vec<TapEvent> {
    let mut out = synthetic_stream(pids, txns);
    let pid = ProcId(pids);
    out.push(TapEvent {
        pid,
        op: TapOp::Begin,
    });
    out.push(TapEvent {
        pid,
        op: TapOp::Read {
            var: 0,
            val: 999_999_999,
        },
    });
    out.push(TapEvent {
        pid,
        op: TapOp::Commit { ticket: txns },
    });
    out
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("M1_ring");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));
    let ring: EventRing<u64> = EventRing::new(1 << 10, Backpressure::Drop);
    g.bench_function(BenchmarkId::new("push_pop", 1), |b| {
        b.iter(|| {
            ring.push(black_box(7));
            black_box(ring.pop())
        })
    });
    let tap = StmTap::new(1 << 10, Backpressure::Drop);
    g.bench_function(BenchmarkId::new("tap_publish", 1), |b| {
        b.iter(|| {
            black_box(tap.publish(ProcId(0), TapOp::Write { var: 0, val: 1 }));
            black_box(tap.pop())
        })
    });
    g.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("M1_ingest");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    let stream = synthetic_stream(4, 1024);
    g.throughput(Throughput::Elements(stream.len() as u64));
    for window in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("window", window), &window, |b, &window| {
            b.iter(|| {
                let mut mon = Monitor::new(MonitorConfig::new().window(window));
                for ev in &stream {
                    mon.ingest(*ev);
                }
                black_box(mon.finish())
            })
        });
    }
    g.finish();
}

fn bench_escalate(c: &mut Criterion) {
    let mut g = c.benchmark_group("M1_escalate");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    let clean = synthetic_stream(4, 64);
    let poisoned = poisoned_stream(4, 64);
    for (name, stream) in [("triage_clear", &clean), ("escalated", &poisoned)] {
        g.bench_with_input(BenchmarkId::new(name, 64), stream, |b, stream| {
            b.iter(|| {
                // One window covering the whole stream: the tier
                // decision happens exactly once.
                let mut mon = Monitor::new(MonitorConfig::new().window(1 << 20));
                for ev in stream {
                    mon.ingest(*ev);
                }
                black_box(mon.finish())
            })
        });
    }
    g.finish();
}

fn report_counters(_c: &mut Criterion) {
    // Untimed counted pass: real threads, real STM, blocking tap.
    let t_start = std::time::Instant::now();
    const THREADS: u32 = 4;
    const TXNS: u64 = 5_000;
    let tap = Arc::new(StmTap::new(1 << 14, Backpressure::Block));
    let tm = Arc::new(GlobalLockStm::new(THREADS as usize));
    let mut mon = Monitor::new(MonitorConfig::new().window(64));
    let consumer = {
        let tap = tap.clone();
        std::thread::spawn(move || mon.run(&tap))
    };
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tap = tap.clone();
            let tm = tm.clone();
            s.spawn(move || {
                let mut cx = Ctx::new(ProcId(t), None).with_tap(tap);
                for _ in 0..TXNS {
                    atomically(&*tm, &mut cx, |tx| {
                        let v = tx.read(t as usize)?;
                        tx.write(t as usize, v + 1)
                    });
                }
            });
        }
    });
    tap.close();
    let stats: MonitorStats = consumer.join().expect("monitor consumer");
    assert_eq!(stats.events_dropped, 0, "blocking tap must not drop");
    assert_eq!(stats.violations, 0, "disjoint workload must be clean");
    assert_eq!(stats.ops_ingested, tap.published());

    let mut snap = MetricsSnapshot::new();
    snap.record_monitor(&stats);
    criterion::report_metrics("M1_monitor", snap.to_json().to_string());

    let entry = LedgerEntry {
        ts_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        git_rev: git_rev(),
        source: "bench/monitor_throughput".into(),
        wall_ms: t_start.elapsed().as_millis() as u64,
        schedules: 0,
        dedup_hits: 0,
        memo_hits: stats.memo_hits,
        memo_lookups: 0,
        zoo_models: 0,
        zoo_algos: 0,
        replay_logs: 0,
        shrink_rounds: 0,
        monitor_ops: stats.ops_ingested,
        monitor_windows: stats.windows_sealed,
        monitor_escalated: stats.escalated,
        dpor_executed: 0,
        dpor_classes: 0,
        frontier_steals: 0,
        p99_window_ns: stats.p99_window_ns(),
        blocked_depth_mode: 0,
        worker_busy_frac: 0.0,
        sat_solved: 0,
        sat_conflicts: 0,
        sat_wall_ns_p99: 0,
        metrics: snap.to_json(),
    };
    let path = std::env::var("JUNGLE_LEDGER")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(".jungle/ledger.jsonl")
        });
    if let Err(e) = ledger::append(&path, &entry) {
        eprintln!(
            "warning: could not append to ledger {}: {e}",
            path.display()
        );
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

criterion_group!(
    benches,
    bench_ring,
    bench_ingest,
    bench_escalate,
    report_counters
);
criterion_main!(benches);
