//! Experiment E5 (model-checker half) and Figure 5: the cost of the
//! theorem experiments — the violation searches of Lemma 1 / Theorems
//! 1–2 and the exhaustive positive sweep of Theorem 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jungle_core::model::Sc;
use jungle_mc::theorems::{lemma1, thm1_case1, thm2, thm3_litmus};
use jungle_mc::SweepSeeds;
use jungle_obs::{MetricsSnapshot, ToJson};
use std::hint::black_box;
use std::time::Duration;

fn bench_violation_searches(c: &mut Criterion) {
    let mut g = c.benchmark_group("F5_violation_search");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("lemma1"), |b| {
        b.iter(|| {
            let r = lemma1().run(SweepSeeds::new(0, 5), 2_000);
            assert!(r.passed);
            black_box(r.passed)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("thm1_case1_sc"), |b| {
        b.iter(|| {
            let r = thm1_case1(&Sc).run(SweepSeeds::new(0, 2_000), 6_000);
            assert!(r.passed);
            black_box(r.passed)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("thm2"), |b| {
        b.iter(|| {
            let r = thm2().run(SweepSeeds::new(0, 2_000), 6_000);
            assert!(r.passed);
            black_box(r.passed)
        })
    });
    g.finish();
}

fn bench_positive_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("T3_exhaustive_sweep");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("thm3_litmus_exhaustive"), |b| {
        b.iter(|| {
            let r = thm3_litmus().run(SweepSeeds::new(0, 0), 4_000);
            assert!(r.passed);
            black_box(r.passed)
        })
    });
    g.finish();
    // One untimed run of each experiment so the JSON output carries the
    // exploration totals and interpreter-level TM counters.
    let mut snap = MetricsSnapshot::new();
    for (e, runs) in [
        (lemma1(), 5),
        (thm1_case1(&Sc), 500),
        (thm2(), 500),
        (thm3_litmus(), 0),
    ] {
        let r = e.run(SweepSeeds::new(0, runs), 4_000);
        snap.record_stm(e.algo.name(), &r.tm);
        snap.record_mc(&r.stats);
    }
    criterion::report_metrics("E5_mc", snap.to_json().to_string());
}

criterion_group!(benches, bench_violation_searches, bench_positive_sweep);
criterion_main!(benches);
