//! Experiment E3: transactional throughput per STM, across transaction
//! sizes and read/write mixes.
//!
//! Expected shape: TL2 and the strong STM scale with transaction size
//! more gracefully than the global-lock family on contended runs (a
//! global lock serializes *all* transactions), while per-commit cost
//! grows with write-set size everywhere. On this single-core host the
//! series mostly reflect per-operation instrumentation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jungle_bench::all_stms;
use jungle_core::ids::ProcId;
use jungle_obs::{MetricsSnapshot, TmMetrics, ToJson};
use jungle_stm::api::{Ctx, TmAlgo};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const VARS: usize = 1024;

fn run_txn(tm: &dyn TmAlgo, cx: &mut Ctx, base: usize, len: usize, read_pct: usize) -> u64 {
    loop {
        tm.txn_start(cx);
        let mut sum = 0u64;
        let mut failed = false;
        for k in 0..len {
            let var = (base + k * 17) & (VARS - 1);
            let res = if (k * 100 / len) < read_pct {
                tm.txn_read(cx, var).map(|v| sum = sum.wrapping_add(v))
            } else {
                tm.txn_write(cx, var, (k + 1) as u64)
            };
            if res.is_err() {
                failed = true;
                break;
            }
        }
        if !failed && tm.txn_commit(cx).is_ok() {
            return sum;
        }
        if failed {
            tm.txn_abort(cx);
        }
    }
}

fn bench_txn_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_txn_size");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(15);
    for len in [1usize, 4, 16, 64] {
        g.throughput(Throughput::Elements(len as u64));
        for tm in all_stms(VARS) {
            let mut cx = Ctx::new(ProcId(0), None);
            let mut base = 0usize;
            g.bench_with_input(BenchmarkId::new(tm.name(), len), &len, |b, &len| {
                b.iter(|| {
                    base = (base + 31) & (VARS - 1);
                    black_box(run_txn(tm.as_ref(), &mut cx, base, len, 50))
                })
            });
        }
    }
    g.finish();
}

fn bench_txn_mixes(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_txn_mix");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(15);
    for read_pct in [0usize, 50, 90, 100] {
        for tm in all_stms(VARS) {
            let mut cx = Ctx::new(ProcId(0), None);
            let mut base = 0usize;
            g.bench_with_input(
                BenchmarkId::new(tm.name(), format!("{read_pct}r")),
                &read_pct,
                |b, &read_pct| {
                    b.iter(|| {
                        base = (base + 31) & (VARS - 1);
                        black_box(run_txn(tm.as_ref(), &mut cx, base, 8, read_pct))
                    })
                },
            );
        }
    }
    g.finish();
    // Counted replay (metrics attached, untimed) for the JSON output.
    let mut snap = MetricsSnapshot::new();
    for tm in all_stms(VARS) {
        let metrics = Arc::new(TmMetrics::new());
        let mut cx = Ctx::new(ProcId(0), None).with_metrics(metrics.clone());
        let mut base = 0usize;
        for _ in 0..500 {
            base = (base + 31) & (VARS - 1);
            black_box(run_txn(tm.as_ref(), &mut cx, base, 8, 50));
        }
        snap.record_stm(tm.name(), &metrics.snapshot());
    }
    criterion::report_metrics("E3_txn_throughput", snap.to_json().to_string());
}

criterion_group!(benches, bench_txn_sizes, bench_txn_mixes);
criterion_main!(benches);
