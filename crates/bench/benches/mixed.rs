//! Experiment E4: end-to-end mixed workloads — sweeping the fraction of
//! operations executed transactionally from 0% to 100%.
//!
//! This is where the §6.1 trade-off lands: at low transactional
//! fractions the cost of *non-transactional* instrumentation dominates
//! (strong pays on every access; versioned pays one packed store per
//! write; global-lock pays nothing), while at high fractions commit
//! cost dominates and the curves converge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jungle_bench::all_stms;
use jungle_core::ids::ProcId;
use jungle_litmus::workload::{execute, generate, WorkloadCfg};
use jungle_obs::{MetricsSnapshot, TmMetrics, ToJson};
use jungle_stm::api::Ctx;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_mixed(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4_mixed_txn_fraction");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    for txn_pct in [0u32, 25, 50, 75, 100] {
        let cfg = WorkloadCfg {
            n_vars: 256,
            txn_pct,
            read_pct: 80,
            txn_len: 4,
            ops: 2_000,
        };
        let items = generate(&cfg, 42);
        g.throughput(Throughput::Elements(cfg.ops as u64));
        for tm in all_stms(cfg.n_vars) {
            g.bench_with_input(
                BenchmarkId::new(tm.name(), format!("{txn_pct}pct")),
                &items,
                |b, items| {
                    let mut cx = Ctx::new(ProcId(0), None);
                    b.iter(|| black_box(execute(tm.as_ref(), &mut cx, items)))
                },
            );
        }
    }
    g.finish();
    // Counted replay (metrics attached, untimed) of the 50% mix for the
    // JSON output.
    let cfg = WorkloadCfg {
        n_vars: 256,
        txn_pct: 50,
        read_pct: 80,
        txn_len: 4,
        ops: 2_000,
    };
    let items = generate(&cfg, 42);
    let mut snap = MetricsSnapshot::new();
    for tm in all_stms(cfg.n_vars) {
        let metrics = Arc::new(TmMetrics::new());
        let mut cx = Ctx::new(ProcId(0), None).with_metrics(metrics.clone());
        black_box(execute(tm.as_ref(), &mut cx, &items));
        snap.record_stm(tm.name(), &metrics.snapshot());
    }
    criterion::report_metrics("E4_mixed", snap.to_json().to_string());
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
