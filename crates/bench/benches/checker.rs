//! Experiment E5 (checker half) and Figures 1–2: the cost of deciding
//! parametrized opacity — per figure outcome, and as history length
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jungle_core::builder::HistoryBuilder;
use jungle_core::history::History;
use jungle_core::ids::{ProcId, Var};
use jungle_core::model::{Rmo, Sc};
use jungle_core::opacity::{check_opacity, check_opacity_traced};
use jungle_core::sgla::check_sgla;
use jungle_litmus::figures::all_litmus;
use jungle_obs::{MetricsSnapshot, ToJson};
use std::hint::black_box;
use std::time::Duration;

/// A history with `k` committed transactions (2 ops each) and `k`
/// non-transactional reads, alternating across two processes.
fn chain_history(k: usize) -> History {
    let mut b = HistoryBuilder::new();
    let (p1, p2) = (ProcId(1), ProcId(2));
    for i in 0..k {
        let x = Var((i % 4) as u32);
        b.start(p1);
        b.write(p1, x, (i + 1) as u64);
        b.read(p1, x, (i + 1) as u64);
        b.commit(p1);
        b.read(p2, x, (i + 1) as u64);
    }
    b.build().unwrap()
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("F1_F2_figure_verdicts");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(20);
    for litmus in all_litmus() {
        g.bench_function(BenchmarkId::from_parameter(litmus.name), |b| {
            b.iter(|| {
                for o in &litmus.outcomes {
                    black_box(check_opacity(&o.history, &Sc).is_opaque());
                    black_box(check_opacity(&o.history, &Rmo).is_opaque());
                }
            })
        });
    }
    g.finish();
    // One traced pass per figure (untimed) so the JSON output carries
    // the checker's search statistics.
    let mut snap = MetricsSnapshot::new();
    for litmus in all_litmus() {
        for o in &litmus.outcomes {
            let (_, stats) = check_opacity_traced(&o.history, &Sc);
            snap.record_checker(litmus.name, &stats);
            let (_, stats) = check_opacity_traced(&o.history, &Rmo);
            snap.record_checker(litmus.name, &stats);
        }
    }
    criterion::report_metrics("F1_F2_checker", snap.to_json().to_string());
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("E5_checker_scaling");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    for k in [1usize, 2, 4, 6] {
        let h = chain_history(k);
        g.bench_with_input(BenchmarkId::new("opacity", h.len()), &h, |b, h| {
            b.iter(|| black_box(check_opacity(h, &Sc).is_opaque()))
        });
        g.bench_with_input(BenchmarkId::new("sgla", h.len()), &h, |b, h| {
            b.iter(|| black_box(check_sgla(h, &Sc).is_sgla()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures, bench_scaling);
criterion_main!(benches);
