//! Experiments E1/E2/A1/A2: the per-operation cost of
//! **non-transactional** reads and writes under each STM — the direct
//! measurement of the paper's instrumentation results.
//!
//! The A1/A2 ablations read off the same data: A2 = strong vs
//! strong-optimized in the read group, A1 = versioned vs write-txn in
//! the write group. (A contended variant with a background mutator is
//! deliberately omitted: on the single-core benchmark host a spinning
//! lock holder and the measured thread share one CPU, so the numbers
//! measure the OS scheduler, not the STM.)
//!
//! Expected shape (§5, §6.1):
//! * reads: global-lock ≈ write-txn ≈ versioned ≈ strong-optimized ≈
//!   tl2 (plain loads) ≪ strong (record check);
//! * writes: global-lock ≈ tl2 (plain store) < versioned (packed store,
//!   Theorem 5's constant-time bound) ≪ write-txn (lock round-trip,
//!   Theorem 4) ≈ strong (ownership acquisition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jungle_bench::all_stms;
use jungle_core::ids::ProcId;
use jungle_obs::{MetricsSnapshot, TmMetrics, ToJson};
use jungle_stm::api::Ctx;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const VARS: usize = 1024;

/// Replay a short counted run (metrics attached, outside the measured
/// loop) so the JSON output carries the per-STM counters without
/// perturbing the timings above.
fn counted_pass(reads: bool) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    for tm in all_stms(VARS) {
        let metrics = Arc::new(TmMetrics::new());
        let mut cx = Ctx::new(ProcId(0), None).with_metrics(metrics.clone());
        let mut i = 0usize;
        for v in 0..1_000u64 {
            i = (i + 7) & (VARS - 1);
            if reads {
                black_box(tm.nt_read(&mut cx, i));
            } else {
                tm.nt_write(&mut cx, i, v % 100);
            }
        }
        snap.record_stm(tm.name(), &metrics.snapshot());
    }
    snap
}

fn bench_nt_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1_nontxn_read");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(20);
    for tm in all_stms(VARS) {
        let mut cx = Ctx::new(ProcId(0), None);
        // Touch the cells once.
        for v in 0..VARS {
            tm.nt_write(&mut cx, v, v as u64 % 100);
        }
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(tm.name()), &(), |b, _| {
            b.iter(|| {
                i = (i + 7) & (VARS - 1);
                black_box(tm.nt_read(&mut cx, i))
            })
        });
    }
    g.finish();
    criterion::report_metrics("E1_nontxn_read", counted_pass(true).to_json().to_string());
}

fn bench_nt_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_nontxn_write");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(20);
    for tm in all_stms(VARS) {
        let mut cx = Ctx::new(ProcId(0), None);
        let mut i = 0usize;
        let mut v = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(tm.name()), &(), |b, _| {
            b.iter(|| {
                i = (i + 7) & (VARS - 1);
                v = (v + 1) % 1_000_000;
                tm.nt_write(&mut cx, i, black_box(v));
            })
        });
    }
    g.finish();
    criterion::report_metrics("E2_nontxn_write", counted_pass(false).to_json().to_string());
}

criterion_group!(benches, bench_nt_reads, bench_nt_writes);
criterion_main!(benches);
