//! `jungle-sat` — a small, dependency-free CDCL SAT solver.
//!
//! The opacity/SGLA witness search in `jungle-core` is an NP-complete
//! DFS over total serialization orders. This crate is the other half
//! of that trade: the `jungle_core::encode` module compiles the order
//! search into CNF and hands it to this solver, then decodes and
//! re-certifies any model it returns. The build environment is fully
//! offline, so no external solver crate can be vendored; this is a
//! classic CDCL core in ~600 lines:
//!
//! * two-watched-literal propagation with blocker literals,
//! * first-UIP conflict analysis and clause learning,
//! * VSIDS-style variable activities with exponential decay,
//! * Luby-sequence restarts and phase saving,
//! * incremental use: [`Solver::add_clause`] may be called between
//!   [`Solver::solve`] calls (it cancels to decision level 0), which
//!   is what the encoder's CEGAR refinement loop needs.
//!
//! Results are never trusted blindly: a satisfying assignment is
//! returned as a plain `Vec<bool>` that callers can (and do) check
//! against their own clause list — [`verify_model`] is the reference
//! implementation of that check.

#![warn(missing_docs)]

/// A propositional variable, numbered from 0.
pub type Var = u32;

/// A literal: variable plus sign, packed as `2 * var + (negated as u32)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// True if this is a negated literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for watch lists.
    fn code(self) -> usize {
        self.0 as usize
    }

    /// DIMACS form: 1-based, negative when negated.
    pub fn dimacs(self) -> i64 {
        let v = self.var() as i64 + 1;
        if self.is_neg() {
            -v
        } else {
            v
        }
    }
}

/// Truth value of a variable or literal during search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

/// Outcome of [`Solver::solve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Solution {
    /// Satisfiable: value of every variable, indexed by `Var`.
    Model(Vec<bool>),
    /// No satisfying assignment exists.
    Unsat,
}

/// Plain counters of solver work, cheap enough to always collect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts hit (equals clauses learned plus level-0 refutations).
    pub conflicts: u64,
    /// Literals enqueued by unit propagation.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned from conflicts.
    pub learned: u64,
}

impl SolverStats {
    /// Accumulate another run's counters into this one.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learned += other.learned;
    }
}

#[derive(Clone, Copy)]
struct Watcher {
    cref: usize,
    blocker: Lit,
}

/// Conflicts between restarts is `RESTART_UNIT * luby(restarts)`.
const RESTART_UNIT: u64 = 64;
const ACTIVITY_DECAY: f64 = 0.95;
const ACTIVITY_RESCALE: f64 = 1e100;

/// A CDCL SAT solver over clauses of [`Lit`]s.
pub struct Solver {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<LBool>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    unsat: bool,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// An empty solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            num_vars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            unsat: false,
            stats: SolverStats::default(),
        }
    }

    /// Allocate a fresh variable and return it.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assign.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Counters of work done across all `solve` calls so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// True once an empty clause (or level-0 conflict) has been derived;
    /// every subsequent `solve` returns [`Solution::Unsat`] immediately.
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }

    fn value(&self, l: Lit) -> LBool {
        match self.assign[l.var() as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause; returns `false` once the formula is known
    /// unsatisfiable (an empty clause was derived). May be called
    /// between `solve` calls — the trail is cancelled to level 0 first,
    /// which is what the encoder's CEGAR loop relies on.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        self.cancel_until(0);
        // Normalize: sort, dedup, drop tautologies and level-0-false
        // literals, and skip clauses already true at level 0.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_by_key(|l| l.0);
        c.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(c.len());
        for (k, &l) in c.iter().enumerate() {
            if k + 1 < c.len() && c[k + 1] == l.negate() {
                return true; // tautology: l ∨ ¬l
            }
            match self.value(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => {}          // drop the false literal
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                let cref = self.clauses.len();
                self.watches[out[0].code()].push(Watcher {
                    cref,
                    blocker: out[1],
                });
                self.watches[out[1].code()].push(Watcher {
                    cref,
                    blocker: out[0],
                });
                self.clauses.push(out);
                true
            }
        }
    }

    fn enqueue(&mut self, l: Lit, from: Option<usize>) {
        let v = l.var() as usize;
        self.assign[v] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negate();
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            'watchers: while i < ws.len() {
                let Watcher { cref, blocker } = ws[i];
                if self.value(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                // Make sure the false literal sits at position 1.
                if self.clauses[cref][0] == false_lit {
                    self.clauses[cref].swap(0, 1);
                }
                let first = self.clauses[cref][0];
                if first != blocker && self.value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Hunt for a replacement watch.
                let len = self.clauses[cref].len();
                for k in 2..len {
                    let lk = self.clauses[cref][k];
                    if self.value(lk) != LBool::False {
                        self.clauses[cref].swap(1, k);
                        self.watches[lk.code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                if self.value(first) == LBool::False {
                    self.watches[false_lit.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                self.stats.propagations += 1;
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    fn bump(&mut self, v: Var) {
        let a = &mut self.activity[v as usize];
        *a += self.var_inc;
        if *a > ACTIVITY_RESCALE {
            for x in &mut self.activity {
                *x /= ACTIVITY_RESCALE;
            }
            self.var_inc /= ACTIVITY_RESCALE;
        }
    }

    /// First-UIP conflict analysis: returns the learnt clause (with the
    /// asserting literal first) and the level to backtrack to.
    fn analyze(&mut self, mut confl: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // slot 0 = asserting lit
        let mut seen = vec![false; self.num_vars as usize];
        let mut path = 0u32;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            let start = usize::from(p.is_some());
            for j in start..self.clauses[confl].len() {
                let q = self.clauses[confl][j];
                let v = q.var();
                if !seen[v as usize] && self.level[v as usize] > 0 {
                    seen[v as usize] = true;
                    self.bump(v);
                    if self.level[v as usize] >= self.decision_level() {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                idx -= 1;
                if seen[self.trail[idx].var() as usize] {
                    p = Some(self.trail[idx]);
                    break;
                }
            }
            path -= 1;
            if path == 0 {
                break;
            }
            confl = self.reason[p.unwrap().var() as usize]
                .expect("non-decision literal on conflict path has a reason");
        }
        learnt[0] = p.unwrap().negate();
        let bt = if learnt.len() == 1 {
            0
        } else {
            // Hoist the deepest of the remaining literals to slot 1 so
            // it becomes the second watch after backtracking.
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize]
        };
        (learnt, bt)
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.decision_level() > lvl {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var() as usize;
                self.phase[v] = !l.is_neg();
                self.assign[v] = LBool::Undef;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len().min(self.qhead);
    }

    fn pick_branch(&self) -> Option<Var> {
        let mut best: Option<Var> = None;
        for v in 0..self.num_vars {
            if self.assign[v as usize] == LBool::Undef {
                match best {
                    None => best = Some(v),
                    Some(b) => {
                        if self.activity[v as usize] > self.activity[b as usize] {
                            best = Some(v);
                        }
                    }
                }
            }
        }
        best
    }

    /// The Luby restart sequence: 1 1 2 1 1 2 4 …
    fn luby(mut i: u64) -> u64 {
        let mut k = 1u32;
        while (1u64 << k) < i + 2 {
            k += 1;
        }
        loop {
            if (1u64 << k) == i + 2 {
                return 1u64 << (k - 1);
            }
            k -= 1;
            i -= (1u64 << k) - 1;
            while (1u64 << k) >= i + 2 {
                k -= 1;
            }
            k += 1;
        }
    }

    /// Search for a satisfying assignment. May be called repeatedly,
    /// interleaved with [`Solver::add_clause`].
    pub fn solve(&mut self) -> Solution {
        if self.unsat {
            return Solution::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return Solution::Unsat;
        }
        let mut conflicts_here = 0u64;
        let mut restart_budget = RESTART_UNIT * Self::luby(0);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return Solution::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.enqueue(asserting, None);
                } else {
                    let cref = self.clauses.len();
                    self.watches[learnt[0].code()].push(Watcher {
                        cref,
                        blocker: learnt[1],
                    });
                    self.watches[learnt[1].code()].push(Watcher {
                        cref,
                        blocker: learnt[0],
                    });
                    self.clauses.push(learnt);
                    self.enqueue(asserting, Some(cref));
                }
                self.stats.learned += 1;
                self.var_inc /= ACTIVITY_DECAY;
            } else if conflicts_here >= restart_budget {
                self.stats.restarts += 1;
                conflicts_here = 0;
                restart_budget = RESTART_UNIT * Self::luby(self.stats.restarts);
                self.cancel_until(0);
            } else {
                match self.pick_branch() {
                    None => {
                        let model = self
                            .assign
                            .iter()
                            .map(|&a| a == LBool::True)
                            .collect::<Vec<bool>>();
                        return Solution::Model(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let l = if self.phase[v as usize] {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        };
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }
}

/// Reference model check: does `model` satisfy every clause?
///
/// This is the certification primitive: anything the solver claims is
/// a model must pass this before a caller acts on it.
pub fn verify_model(clauses: &[Vec<Lit>], model: &[bool]) -> bool {
    clauses.iter().all(|c| {
        c.iter()
            .any(|l| model.get(l.var() as usize).copied().unwrap_or(false) != l.is_neg())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(x: i64) -> Lit {
        let v = (x.unsigned_abs() - 1) as Var;
        if x < 0 {
            Lit::neg(v)
        } else {
            Lit::pos(v)
        }
    }

    fn solver_for(num_vars: u32, clauses: &[Vec<i64>]) -> (Solver, Vec<Vec<Lit>>) {
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        let mut cs = Vec::new();
        for c in clauses {
            let c: Vec<Lit> = c.iter().map(|&x| lit(x)).collect();
            s.add_clause(&c);
            cs.push(c);
        }
        (s, cs)
    }

    #[test]
    fn trivial_sat() {
        let (mut s, cs) = solver_for(2, &[vec![1, 2], vec![-1, 2]]);
        match s.solve() {
            Solution::Model(m) => assert!(verify_model(&cs, &m)),
            Solution::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn trivial_unsat() {
        let (mut s, _) = solver_for(1, &[vec![1], vec![-1]]);
        assert_eq!(s.solve(), Solution::Unsat);
        assert!(s.is_unsat());
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p(i,h): pigeon i in hole h; vars 1..=6 as i*2 + h.
        let p = |i: i64, h: i64| i * 2 + h + 1;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![p(i, 0), p(i, 1)]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    clauses.push(vec![-p(i, h), -p(j, h)]);
                }
            }
        }
        let (mut s, _) = solver_for(6, &clauses);
        assert_eq!(s.solve(), Solution::Unsat);
    }

    #[test]
    fn incremental_blocking_enumerates_models() {
        // x1 ∨ x2 has exactly 3 models over 2 vars.
        let (mut s, cs) = solver_for(2, &[vec![1, 2]]);
        let mut models = 0;
        loop {
            match s.solve() {
                Solution::Unsat => break,
                Solution::Model(m) => {
                    assert!(verify_model(&cs, &m));
                    models += 1;
                    assert!(models <= 3, "enumerated too many models");
                    let block: Vec<Lit> = (0..2)
                        .map(|v| {
                            if m[v as usize] {
                                Lit::neg(v)
                            } else {
                                Lit::pos(v)
                            }
                        })
                        .collect();
                    s.add_clause(&block);
                }
            }
        }
        assert_eq!(models, 3);
    }

    #[test]
    fn luby_prefix() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), w, "luby({i})");
        }
    }
}
