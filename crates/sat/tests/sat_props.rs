//! Property tests for the CDCL solver on random CNF.
//!
//! Two obligations, per the solver's role as a *backend whose answers
//! are checked*: every `Model` must satisfy the exact clause list it
//! was given (soundness), and every `Unsat` on a small instance must be
//! confirmed by brute-force enumeration of all assignments
//! (completeness cross-check, ≤ 20 variables).

use jungle_sat::{verify_model, Lit, Solution, Solver};
use rand::{Rng, SeedableRng};

type StdRng = rand::rngs::StdRng;

/// A random CNF instance: `1..=max_vars` variables, clause/variable
/// ratio drawn wide enough to cover trivially-SAT through
/// overconstrained-UNSAT regimes, widths 1–3.
fn random_cnf(rng: &mut StdRng, max_vars: u32) -> (u32, Vec<Vec<Lit>>) {
    let n = rng.gen_range(1..=max_vars);
    let m = rng.gen_range(1..=n * 5 + 5);
    let clauses = (0..m)
        .map(|_| {
            let w = rng.gen_range(1..=3usize);
            (0..w)
                .map(|_| {
                    let v = rng.gen_range(0..n);
                    if rng.gen_bool(0.5) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect()
        })
        .collect();
    (n, clauses)
}

fn solve(n: u32, clauses: &[Vec<Lit>]) -> Solution {
    let mut s = Solver::new();
    for _ in 0..n {
        s.new_var();
    }
    for c in clauses {
        if !s.add_clause(c) {
            break; // formula already unsatisfiable
        }
    }
    s.solve()
}

/// Ground truth by exhaustive enumeration (caller bounds `n`).
fn brute_force_satisfiable(n: u32, clauses: &[Vec<Lit>]) -> bool {
    assert!(n <= 20, "brute force bounded to 20 vars");
    (0u64..1 << n).any(|bits| {
        let assign: Vec<bool> = (0..n).map(|v| (bits >> v) & 1 == 1).collect();
        verify_model(clauses, &assign)
    })
}

#[test]
fn models_satisfy_their_exact_clause_list() {
    let mut models = 0;
    for seed in 0..400 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (n, clauses) = random_cnf(&mut rng, 30);
        if let Solution::Model(m) = solve(n, &clauses) {
            assert_eq!(m.len(), n as usize, "model must assign every var");
            assert!(
                verify_model(&clauses, &m),
                "seed {seed}: model violates its clauses"
            );
            models += 1;
        }
    }
    assert!(models > 50, "the generator should produce many SAT cases");
}

#[test]
fn verdicts_match_brute_force_on_small_instances() {
    let (mut sat_seen, mut unsat_seen) = (0, 0);
    for seed in 0..250 {
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let (n, clauses) = random_cnf(&mut rng, 12);
        let truth = brute_force_satisfiable(n, &clauses);
        match solve(n, &clauses) {
            Solution::Model(m) => {
                assert!(truth, "seed {seed}: solver SAT but formula is UNSAT");
                assert!(verify_model(&clauses, &m));
                sat_seen += 1;
            }
            Solution::Unsat => {
                assert!(!truth, "seed {seed}: solver UNSAT but formula is SAT");
                unsat_seen += 1;
            }
        }
    }
    assert!(sat_seen > 20 && unsat_seen > 20, "both regimes must occur");
}

#[test]
fn unsat_cross_checked_at_twenty_vars() {
    // Overconstrained random 3-SAT at the full brute-force bound: draw
    // until a few UNSAT instances have been confirmed exhaustively.
    let mut confirmed = 0;
    for seed in 0..40 {
        if confirmed == 3 {
            break;
        }
        let mut rng = StdRng::seed_from_u64(9_000 + seed);
        let n = 20u32;
        let clauses: Vec<Vec<Lit>> = (0..120)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        let v = rng.gen_range(0..n);
                        if rng.gen_bool(0.5) {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect()
            })
            .collect();
        if let Solution::Unsat = solve(n, &clauses) {
            assert!(
                !brute_force_satisfiable(n, &clauses),
                "seed {seed}: 20-var UNSAT verdict refuted by brute force"
            );
            confirmed += 1;
        }
    }
    assert!(confirmed > 0, "ratio 6.0 should yield UNSAT instances");
}

/// Pigeonhole PHP(5, 4): 5 pigeons into 4 holes, a classic instance
/// with no short resolution proof — exercises learning and restarts.
#[test]
fn pigeonhole_is_unsat_with_real_conflict_work() {
    const P: u32 = 5;
    const H: u32 = 4;
    let var = |p: u32, h: u32| p * H + h;
    let mut s = Solver::new();
    for _ in 0..P * H {
        s.new_var();
    }
    // Every pigeon sits somewhere.
    for p in 0..P {
        let c: Vec<Lit> = (0..H).map(|h| Lit::pos(var(p, h))).collect();
        s.add_clause(&c);
    }
    // No two pigeons share a hole.
    for h in 0..H {
        for p1 in 0..P {
            for p2 in (p1 + 1)..P {
                s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    assert!(matches!(s.solve(), Solution::Unsat));
    assert!(s.is_unsat());
    let st = s.stats();
    assert!(st.conflicts > 0, "PHP must conflict");
    assert!(st.learned > 0, "PHP must learn clauses");
    assert!(st.propagations > 0);
}

#[test]
fn solver_state_survives_incremental_clause_addition() {
    // The CEGAR loop adds blocking clauses between solve calls; the
    // solver must stay correct across the add/solve interleaving.
    let mut s = Solver::new();
    let (a, b, c) = (s.new_var(), s.new_var(), s.new_var());
    s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    s.add_clause(&[Lit::pos(c)]);
    let mut blocked: Vec<Vec<Lit>> = vec![vec![Lit::pos(a), Lit::pos(b)], vec![Lit::pos(c)]];
    // Block each successive model; 3 free-ish vars admit at most 8.
    let mut rounds = 0;
    while let Solution::Model(m) = s.solve() {
        assert!(verify_model(&blocked, &m));
        let block: Vec<Lit> = m
            .iter()
            .enumerate()
            .map(|(v, &t)| {
                let v = v as u32;
                if t {
                    Lit::neg(v)
                } else {
                    Lit::pos(v)
                }
            })
            .collect();
        s.add_clause(&block);
        blocked.push(block);
        rounds += 1;
        assert!(rounds <= 8, "more models than assignments");
    }
    // (a ∨ b) ∧ c has exactly 3 models over 3 vars... over the full
    // space: a,b free except ¬a∧¬b, c fixed → 3 models.
    assert_eq!(rounds, 3);
}
